"""Span-based tracing for the EPOC pipeline.

A :class:`Tracer` records a tree of nestable, wall-clock spans::

    with tracer.span("synthesis", block=3) as span:
        ...
        span.set(cnots=5)

Span trees export as Chrome trace-event JSON ("complete" / ``ph="X"``
events), loadable in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``.  A disabled tracer hands out a shared no-op span so
the instrumented hot paths cost one method call and a truth test when
telemetry is off.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer", "NULL_TRACER", "span_to_state", "span_from_state"]


def _jsonable(value: Any) -> Any:
    """Coerce attribute values into something ``json.dump`` accepts."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


class Span:
    """One timed region: name, attributes, children, start/end seconds."""

    __slots__ = ("name", "attributes", "children", "start", "end", "tid")

    def __init__(self, name: str, attributes: Optional[Dict[str, Any]] = None):
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes) if attributes else {}
        self.children: List[Span] = []
        self.start = 0.0
        self.end = 0.0
        self.tid = 0

    @property
    def duration(self) -> float:
        """Wall-clock seconds between enter and exit (0 while open)."""
        if self.end <= self.start:
            return 0.0
        return self.end - self.start

    def set(self, **attributes: Any) -> "Span":
        """Attach (or overwrite) attributes on the span."""
        self.attributes.update(attributes)
        return self

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> List["Span"]:
        """All descendant spans (including self) with the given name."""
        return [span for span in self.walk() if span.name == name]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name!r}, {self.duration * 1e3:.2f} ms, {self.attributes})"


def span_to_state(span: Span) -> Dict[str, Any]:
    """A picklable snapshot of a completed span tree.

    Used to ship worker-process spans back to the parent; timestamps stay
    on the worker's clock and are rebased by :func:`span_from_state`.
    """
    return {
        "name": span.name,
        "attributes": {k: _jsonable(v) for k, v in span.attributes.items()},
        "start": span.start,
        "end": span.end,
        "children": [span_to_state(child) for child in span.children],
    }


def span_from_state(
    state: Dict[str, Any], shift: float = 0.0, tid: Optional[int] = None
) -> Span:
    """Rebuild a span tree from :func:`span_to_state` output.

    ``shift`` is added to every timestamp (rebasing a worker's clock onto
    the parent's); ``tid`` overrides the thread id on the whole tree so
    trace viewers draw each worker on its own track.
    """
    span = Span(state["name"], state.get("attributes"))
    span.start = state["start"] + shift
    span.end = state["end"] + shift
    if tid is not None:
        span.tid = tid
    span.children = [
        span_from_state(child, shift=shift, tid=tid)
        for child in state.get("children", ())
    ]
    return span


class _NullSpan:
    """Shared do-nothing span handed out by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, **attributes: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager that opens/closes one span on a tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", name: str, attributes: Dict[str, Any]):
        self._tracer = tracer
        self._span = Span(name, attributes)

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *exc_info) -> None:
        self._tracer._pop(self._span)


class Tracer:
    """Records nested spans; one per telemetry session.

    When ``metrics`` is set, every closed span also feeds a
    ``span.<name>.seconds`` histogram in that registry, so stage-duration
    statistics are available without walking the trace tree.
    """

    def __init__(self, enabled: bool = True, metrics=None):
        self.enabled = enabled
        self.metrics = metrics
        self.roots: List[Span] = []
        self._origin = time.perf_counter()
        self._local = threading.local()
        self._lock = threading.Lock()

    # -- recording -------------------------------------------------------

    def span(self, name: str, **attributes: Any):
        """Open a nested span; use as a context manager."""
        if not self.enabled:
            return _NULL_SPAN
        return _SpanContext(self, name, attributes)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        span.start = time.perf_counter()
        span.tid = threading.get_ident()
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        span.end = time.perf_counter()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        if self.metrics is not None:
            self.metrics.observe(f"span.{span.name}.seconds", span.duration)

    def attach(self, span: Span) -> None:
        """Graft an already-completed span tree into the current position.

        Worker processes serialize their span trees with
        :func:`span_to_state`; the parent rebuilds and attaches them under
        whatever span is open on the calling thread (or as a new root).
        The tree is not re-observed into the duration histograms — the
        worker's own registry snapshot already carries those.
        """
        if not self.enabled:
            return
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)

    # -- inspection ------------------------------------------------------

    def walk(self) -> Iterator[Span]:
        """Depth-first iteration over every recorded span."""
        for root in list(self.roots):
            yield from root.walk()

    def span_names(self) -> List[str]:
        """Every distinct span name recorded, in first-seen order."""
        seen: Dict[str, None] = {}
        for span in self.walk():
            seen.setdefault(span.name)
        return list(seen)

    # -- export ----------------------------------------------------------

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The trace tree as a Chrome trace-event JSON object.

        Emits "complete" events (``ph="X"``) with microsecond timestamps
        relative to tracer creation; thread ids are compacted to small
        integers so Perfetto draws one track per thread.
        """
        now = time.perf_counter()
        tids: Dict[int, int] = {}
        events: List[Dict[str, Any]] = []
        for span in self.walk():
            end = span.end if span.end > span.start else now
            events.append(
                {
                    "name": span.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": (span.start - self._origin) * 1e6,
                    "dur": max(0.0, end - span.start) * 1e6,
                    "pid": 0,
                    "tid": tids.setdefault(span.tid, len(tids)),
                    "args": {k: _jsonable(v) for k, v in span.attributes.items()},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export(self, path: str) -> None:
        """Write the Chrome trace-event JSON to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh)


#: The installed-by-default tracer: permanently disabled, records nothing.
NULL_TRACER = Tracer(enabled=False)

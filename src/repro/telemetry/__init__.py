"""Observability for the EPOC pipeline: tracing, metrics and logging.

Three coordinated pieces (see README "Observability"):

* :class:`Tracer` — nestable wall-clock spans, exported as Chrome
  trace-event JSON (open in Perfetto or ``chrome://tracing``).
* :class:`MetricsRegistry` — counters, gauges and fixed-bucket
  histograms, exported as flat JSON.
* :func:`configure_logging` — the ``repro.*`` stdlib-logging hierarchy
  with an optional structured JSON formatter.

Instrumented code always reports to the *installed* recorders via
:func:`get_tracer` / :func:`get_metrics`; the defaults are permanently
disabled no-ops, so the pipeline pays near-zero overhead until a caller
opts in::

    with telemetry.telemetry_session() as (tracer, registry):
        report = EPOCPipeline(config).compile(circuit)
    tracer.export("trace.json")
    registry.export("metrics.json")
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

from repro.telemetry.logs import (
    ENV_LOG_JSON,
    ENV_LOG_LEVEL,
    JsonLogFormatter,
    configure_logging,
    get_logger,
)
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
)
from repro.telemetry.tracer import (
    NULL_TRACER,
    Span,
    Tracer,
    span_from_state,
    span_to_state,
)

__all__ = [
    "Span",
    "Tracer",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "NULL_TRACER",
    "NULL_METRICS",
    "JsonLogFormatter",
    "configure_logging",
    "get_logger",
    "ENV_LOG_LEVEL",
    "ENV_LOG_JSON",
    "get_tracer",
    "get_metrics",
    "set_tracer",
    "set_metrics",
    "telemetry_session",
    "span_to_state",
    "span_from_state",
]

#: The installed recorders are context-scoped (:mod:`contextvars`), not
#: process-global: concurrent jobs in one process (the ``repro.service``
#: daemon) each install their own session without clobbering the others.
#: Plain threads start from an empty context — code that fans work out to
#: threads and wants telemetry from inside them must copy the caller's
#: context into each thread (see ``repro.racing.race.StrategyRace``).
_tracer: "contextvars.ContextVar[Tracer]" = contextvars.ContextVar(
    "repro_telemetry_tracer", default=NULL_TRACER
)
_metrics: "contextvars.ContextVar[MetricsRegistry]" = contextvars.ContextVar(
    "repro_telemetry_metrics", default=NULL_METRICS
)


def get_tracer() -> Tracer:
    """The tracer installed in the current context (no-op by default)."""
    return _tracer.get()


def get_metrics() -> MetricsRegistry:
    """The metrics registry installed in the current context."""
    return _metrics.get()


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install ``tracer`` in the current context; returns the previous one."""
    previous = _tracer.get()
    _tracer.set(tracer if tracer is not None else NULL_TRACER)
    return previous


def set_metrics(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` in the current context; returns the previous one."""
    previous = _metrics.get()
    _metrics.set(registry if registry is not None else NULL_METRICS)
    return previous


@contextmanager
def telemetry_session(
    trace: bool = True, metrics: bool = True
) -> Iterator[Tuple[Tracer, MetricsRegistry]]:
    """Install fresh enabled recorders for the duration of the block.

    The previous recorders are restored on exit; the yielded tracer and
    registry stay readable/exportable afterwards.  The tracer is wired to
    the registry so every closed span also lands in a
    ``span.<name>.seconds`` histogram.
    """
    registry = MetricsRegistry() if metrics else NULL_METRICS
    tracer = Tracer(metrics=registry if metrics else None) if trace else NULL_TRACER
    previous_tracer = set_tracer(tracer)
    previous_metrics = set_metrics(registry)
    try:
        yield tracer, registry
    finally:
        set_tracer(previous_tracer)
        set_metrics(previous_metrics)

"""Worker-side entry points for the parallel compilation engine.

Everything here must be importable and picklable from a bare worker
process: tasks are plain frozen dataclasses carrying only arrays, configs
and circuit blocks, and :func:`run_chunk` is the single module-level
function the process pool invokes.

Each chunk runs under its own telemetry session inside the worker; the
resulting metrics snapshot and span trees ride back to the parent in the
:class:`ChunkResult` and are merged into the parent's recorders by the
executor, so ``--trace`` / ``--metrics`` output stays complete when work
fans out across processes.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro import telemetry
from repro.config import QOCConfig, RacingConfig, ResilienceConfig
from repro.obs import events as obs_events
from repro.obs import resources as obs_resources
from repro.partition.block import CircuitBlock
from repro.resilience.faults import fault_fires

__all__ = ["PulseTask", "SynthesisTask", "ChunkResult", "run_chunk"]


@dataclass(frozen=True)
class PulseTask:
    """One QOC problem: find the minimal-latency pulse for ``matrix``.

    The target acts on local wires ``0..num_qubits-1``; retargeting to
    concrete qubit lines is free and happens in the parent (see
    ``Pulse.on_qubits``), so identical unitaries on different qubits are
    one task.
    """

    matrix: np.ndarray
    num_qubits: int
    config: QOCConfig
    resilience: Optional[ResilienceConfig] = None
    #: neighbor controls selected by the parent's warm-start scan; the
    #: worker only consumes them, so serial and parallel runs seed from
    #: the same stage-start library snapshot
    warm_controls: Optional[np.ndarray] = None
    #: hedged GRAPE-restart racing inside the worker (see repro.racing);
    #: None or inactive keeps the sequential search
    racing: Optional[RacingConfig] = None

    def run(self, first_probe_eig: Optional[Any] = None) -> Any:
        from repro.qoc.latency import pulse_for_unitary

        return pulse_for_unitary(
            self.matrix,
            self.num_qubits,
            self.config,
            resilience=self.resilience,
            warm_controls=self.warm_controls,
            first_probe_eig=first_probe_eig,
            racing=self.racing,
        )


@dataclass(frozen=True)
class SynthesisTask:
    """One VUG-synthesis problem: Algorithm 2 on a partition block."""

    block: CircuitBlock
    threshold: float
    max_cnots: int
    resilience: Optional[ResilienceConfig] = None
    #: hedged strategy racing inside the worker (see repro.racing).
    racing: Optional[RacingConfig] = None

    def run(self) -> Any:
        from repro.synthesis import synthesize_block

        return synthesize_block(
            self.block,
            threshold=self.threshold,
            max_cnots=self.max_cnots,
            resilience=self.resilience,
            racing=self.racing,
        )


@dataclass
class ChunkResult:
    """Results of one chunk plus the worker's telemetry to merge back."""

    values: List[Any]
    pid: int
    metrics_state: Optional[Dict[str, Any]] = None
    span_states: List[Dict[str, Any]] = field(default_factory=list)
    #: worker-clock instant the chunk started (rebases span timestamps)
    clock_origin: float = 0.0
    #: progress events emitted inside the worker, in order; they carry
    #: wall-clock ``ts`` and the worker ``pid``, so the parent replays
    #: them through its own bus without any rebasing
    events: List[Dict[str, Any]] = field(default_factory=list)
    #: this chunk's CPU delta + the worker's RSS high-water mark
    resource_state: Optional[Dict[str, Any]] = None


def run_chunk(
    tasks: Sequence[Any],
    collect_telemetry: bool = False,
    chunk_index: int = -1,
    collect_obs: bool = False,
) -> ChunkResult:
    """Process-pool entry point: run ``tasks`` in order, in this process.

    Any exception (e.g. :class:`~repro.exceptions.QOCError` from a pulse
    search that cannot reach the fidelity threshold) propagates to the
    parent through the future; depending on the executor's resilience
    settings it either aborts the batch or triggers a serial in-parent
    retry of this chunk.
    """
    if fault_fires("worker.crash", chunk=chunk_index):
        # simulate a worker process dying mid-chunk; guarded so the
        # parent's serial retry of the same chunk never kills the parent
        if multiprocessing.parent_process() is not None:
            os._exit(43)
    # never keep the parent's bus/profiler inherited through fork — a
    # forked JSONL sink would interleave writes into the parent's file.
    # With collect_obs, events buffer in memory and ride home on the
    # result; the chunk's rusage delta travels the same way.
    event_sink = obs_events.MemorySink() if collect_obs else None
    previous_bus = obs_events.set_bus(
        obs_events.EventBus([event_sink]) if event_sink else None
    )
    previous_profiler = obs_resources.set_profiler(None)
    rusage_before = obs_resources.current_rusage() if collect_obs else None
    try:
        if not collect_telemetry:
            # drop any recorders inherited through fork so workers never
            # pay for (or mutate a copy of) the parent's telemetry state
            previous_tracer = telemetry.set_tracer(None)
            previous_metrics = telemetry.set_metrics(None)
            try:
                result = ChunkResult(
                    values=[task.run() for task in tasks], pid=os.getpid()
                )
            finally:
                telemetry.set_tracer(previous_tracer)
                telemetry.set_metrics(previous_metrics)
        else:
            with telemetry.telemetry_session() as (tracer, registry):
                origin = tracer._origin
                values = [task.run() for task in tasks]
            result = ChunkResult(
                values=values,
                pid=os.getpid(),
                metrics_state=registry.state(),
                span_states=[
                    telemetry.span_to_state(root) for root in tracer.roots
                ],
                clock_origin=origin,
            )
    finally:
        obs_events.set_bus(previous_bus)
        obs_resources.set_profiler(previous_profiler)
    if collect_obs:
        rusage_after = obs_resources.current_rusage()
        result.events = event_sink.events
        result.resource_state = {
            "pid": os.getpid(),
            "cpu_seconds": (
                rusage_after["cpu_seconds"] - rusage_before["cpu_seconds"]
            ),
            "peak_rss_kb": rusage_after["peak_rss_kb"],
        }
    return result

"""The process-pool executor behind every parallel compilation stage.

:class:`ParallelExecutor` wraps :class:`concurrent.futures.ProcessPoolExecutor`
with the behaviours the pipeline needs:

* **Serial fallback** — ``workers=0`` (or fewer tasks than
  ``min_tasks``) runs tasks inline on the calling thread, preserving the
  single-process pipeline exactly: same telemetry spans, same ordering,
  same exceptions.
* **Ordered, chunked fan-out** — tasks are batched ``chunk_size`` at a
  time to amortize inter-process pickling, and results always come back
  in submission order regardless of completion order.  Completion is
  observed with ``concurrent.futures.wait(..., FIRST_EXCEPTION)``, so a
  fast-failing late chunk aborts (or recovers) immediately instead of
  hiding behind every earlier chunk.
* **Telemetry fan-in** — when the parent has recorders installed, each
  worker runs its chunk under a private telemetry session and ships the
  metrics snapshot and span trees home; the executor merges them so
  ``--trace`` / ``--metrics`` output is complete across processes.
* **Worker-crash recovery** — when a worker process dies mid-chunk
  (``BrokenProcessPool``), the executor rebuilds the pool, re-runs the
  affected chunks *serially in the parent* (quarantining any task that
  fails again), and resubmits untouched chunks to the fresh pool, so one
  poisoned task no longer discards the whole batch.  ``crash_retries=0``
  restores the old fail-fast behaviour.

A failing task (for example a :class:`~repro.exceptions.QOCError` from an
unreachable fidelity target) still cancels the remaining work, shuts the
pool down, and re-raises in the parent — unless the caller supplies an
``on_task_error`` fallback that converts the failure into a substitute
result.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_all_start_methods, get_context
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro import telemetry
from repro.config import ParallelConfig, ResilienceConfig
from repro.obs import events as obs_events
from repro.obs import resources as obs_resources
from repro.parallel.worker import ChunkResult, run_chunk

__all__ = ["ParallelExecutor"]

logger = telemetry.get_logger("parallel.executor")


def _start_method() -> str:
    """Prefer fork (cheap, inherits the loaded interpreter) when available."""
    return "fork" if "fork" in get_all_start_methods() else "spawn"


class ParallelExecutor:
    """Runs picklable ``.run()`` tasks serially or across worker processes.

    The pool is created lazily on the first parallel :meth:`map` and torn
    down by :meth:`shutdown` (or the context manager), so a serial
    executor never pays any multiprocessing cost.
    """

    def __init__(
        self,
        workers: int = 0,
        chunk_size: int = 1,
        min_tasks: int = 2,
        crash_retries: int = 1,
    ):
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.workers = max(0, int(workers))
        self.chunk_size = int(chunk_size)
        self.min_tasks = max(1, int(min_tasks))
        self.crash_retries = max(0, int(crash_retries))
        self._pool: Optional[ProcessPoolExecutor] = None
        # guards _pool hand-offs: shutdown() is called from the context
        # manager, from three crash-recovery paths, and (in the service)
        # from a signal-drain thread — all potentially concurrent
        self._pool_lock = threading.Lock()

    @classmethod
    def from_config(
        cls,
        config: Optional[ParallelConfig],
        resilience: Optional[ResilienceConfig] = None,
    ) -> "ParallelExecutor":
        config = config or ParallelConfig()
        return cls(
            workers=config.resolved_workers(),
            chunk_size=config.chunk_size,
            min_tasks=config.min_tasks,
            crash_retries=(
                resilience.worker_crash_retries if resilience is not None else 1
            ),
        )

    @property
    def is_parallel(self) -> bool:
        """Whether this executor may fan work out to worker processes."""
        return self.workers >= 1

    # -- execution -------------------------------------------------------

    def map(
        self,
        tasks: Sequence[Any],
        on_chunk: Optional[Callable[[int, List[Any]], None]] = None,
        on_task_error: Optional[Callable[[Any, BaseException], Any]] = None,
    ) -> List[Any]:
        """Run every task and return their results in task order.

        ``on_chunk(start_index, values)`` fires as each chunk of results
        becomes available (chunks may complete out of submission order);
        ``on_task_error(task, exc)`` turns an individual task failure
        into a substitute result instead of aborting the batch.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        if not self.is_parallel or len(tasks) < self.min_tasks:
            results = []
            for index, task in enumerate(tasks):
                try:
                    value = task.run()
                except Exception as exc:
                    if on_task_error is None:
                        raise
                    telemetry.get_metrics().inc("resilience.quarantined_tasks")
                    value = on_task_error(task, exc)
                if on_chunk is not None:
                    on_chunk(index, [value])
                results.append(value)
            return results
        return self._map_parallel(tasks, on_chunk, on_task_error)

    def _map_parallel(
        self,
        tasks: List[Any],
        on_chunk: Optional[Callable[[int, List[Any]], None]] = None,
        on_task_error: Optional[Callable[[Any, BaseException], Any]] = None,
    ) -> List[Any]:
        metrics = telemetry.get_metrics()
        tracer = telemetry.get_tracer()
        collect = metrics.enabled or tracer.enabled
        collect_obs = (
            obs_events.get_bus().enabled or obs_resources.get_profiler().enabled
        )
        chunks = [
            tasks[i : i + self.chunk_size]
            for i in range(0, len(tasks), self.chunk_size)
        ]
        metrics.gauge("parallel.workers", self.workers)
        metrics.inc("parallel.dispatches")
        metrics.inc("parallel.tasks", len(tasks))
        submitted_at = time.perf_counter()

        chunk_results: Dict[int, ChunkResult] = {}
        to_submit = deque(range(len(chunks)))
        future_map: Dict[Any, int] = {}
        crash_budget = self.crash_retries

        def finish(index: int, chunk_result: ChunkResult) -> None:
            chunk_results[index] = chunk_result
            if on_chunk is not None:
                on_chunk(index * self.chunk_size, chunk_result.values)

        while to_submit or future_map:
            if to_submit:
                pool = self._ensure_pool()
                while to_submit:
                    index = to_submit.popleft()
                    future = pool.submit(
                        run_chunk, chunks[index], collect, index, collect_obs
                    )
                    future_map[future] = index
            # FIRST_EXCEPTION: a fast-failing late chunk is observed (and
            # recovery/teardown started) without waiting for every earlier
            # chunk to finish
            done, _ = wait(set(future_map), return_when=FIRST_EXCEPTION)
            crashed: List[int] = []
            for future in done:
                index = future_map.pop(future)
                exc = future.exception()
                if exc is None:
                    finish(index, future.result())
                elif isinstance(exc, BrokenProcessPool):
                    crashed.append(index)
                else:
                    # the task itself raised inside a healthy worker
                    if on_task_error is None:
                        self._abort(future_map)
                        raise exc
                    metrics.inc("resilience.chunk_serial_retries")
                    finish(
                        index,
                        self._run_chunk_serially(chunks[index], on_task_error),
                    )
            if crashed:
                if crash_budget <= 0:
                    self._abort(future_map)
                    raise BrokenProcessPool(
                        "a worker process died and the crash-retry budget "
                        "is exhausted"
                    )
                crash_budget -= 1
                metrics.inc("resilience.worker_crashes")
                logger.warning(
                    "worker crash detected; retrying %d chunk(s) serially "
                    "in the parent and rebuilding the pool",
                    len(crashed),
                )
                # cleanly cancelled futures never started: resubmit them to
                # the fresh pool; everything else resolves immediately on
                # the broken pool and joins the serial-retry set
                for future, index in list(future_map.items()):
                    if future.cancel():
                        future_map.pop(future)
                        to_submit.append(index)
                if future_map:
                    leftovers, _ = wait(set(future_map))
                    for future in leftovers:
                        index = future_map.pop(future)
                        if future.exception() is None:
                            finish(index, future.result())
                        else:
                            crashed.append(index)
                self.shutdown()
                for index in sorted(crashed):
                    metrics.inc("resilience.chunk_serial_retries")
                    finish(
                        index,
                        self._run_chunk_serially(chunks[index], on_task_error),
                    )

        results: List[Any] = []
        for index in range(len(chunks)):
            chunk_result = chunk_results[index]
            self._merge_telemetry(chunk_result, submitted_at)
            results.extend(chunk_result.values)
        return results

    def _run_chunk_serially(
        self,
        chunk: List[Any],
        on_task_error: Optional[Callable[[Any, BaseException], Any]],
    ) -> ChunkResult:
        """Re-run one chunk in the parent, quarantining poisoned tasks.

        Tasks execute directly against the parent's telemetry recorders,
        so the resulting :class:`ChunkResult` carries no worker telemetry
        to merge.
        """
        metrics = telemetry.get_metrics()
        values: List[Any] = []
        for task in chunk:
            try:
                values.append(task.run())
            except Exception as exc:
                if on_task_error is None:
                    self.shutdown()
                    raise
                metrics.inc("resilience.quarantined_tasks")
                logger.warning("quarantined a poisoned task: %s", exc)
                values.append(on_task_error(task, exc))
        return ChunkResult(values=values, pid=os.getpid())

    def _abort(self, future_map: Dict[Any, int]) -> None:
        """Cancel outstanding work and tear the pool down before re-raising."""
        for future in future_map:
            future.cancel()
        self.shutdown()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=get_context(_start_method()),
                )
                logger.debug(
                    "started %d-worker pool (%s)", self.workers, _start_method()
                )
            return self._pool

    @staticmethod
    def _merge_telemetry(chunk: ChunkResult, submitted_at: float) -> None:
        """Fold one worker chunk's recorders into the parent's."""
        metrics = telemetry.get_metrics()
        if chunk.metrics_state is not None and metrics.enabled:
            metrics.merge_state(chunk.metrics_state)
        tracer = telemetry.get_tracer()
        if chunk.span_states and tracer.enabled:
            # rebase worker-clock timestamps: the worker session opened
            # (clock_origin) just after the parent submitted the chunk
            shift = submitted_at - chunk.clock_origin
            for state in chunk.span_states:
                tracer.attach(
                    telemetry.span_from_state(state, shift=shift, tid=chunk.pid)
                )
        if chunk.events:
            # worker events carry wall-clock ts + pid: no rebasing needed
            obs_events.get_bus().replay(chunk.events)
        if chunk.resource_state is not None:
            obs_resources.get_profiler().merge_worker_state(chunk.resource_state)

    # -- lifecycle -------------------------------------------------------

    def shutdown(self) -> None:
        """Stop the worker pool — idempotent and exception-safe.

        Called from the context manager *and* from the crash-recovery
        paths in :meth:`_map_parallel` / :meth:`_run_chunk_serially` /
        :meth:`_abort`, often with the pool already broken.  The pool
        reference is detached under the lock first, so a double shutdown
        (or a concurrent one from the service's signal drain) is a no-op,
        and a pool whose own ``shutdown`` raises (a crashed
        ``BrokenProcessPool`` mid-teardown) never masks the original
        error or leaves ``_pool`` pointing at a dead pool.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is None:
            return
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:
            logger.warning(
                "worker pool raised during shutdown; continuing", exc_info=True
            )

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

"""The process-pool executor behind every parallel compilation stage.

:class:`ParallelExecutor` wraps :class:`concurrent.futures.ProcessPoolExecutor`
with the three behaviours the pipeline needs:

* **Serial fallback** — ``workers=0`` (or fewer tasks than
  ``min_tasks``) runs tasks inline on the calling thread, preserving the
  single-process pipeline exactly: same telemetry spans, same ordering,
  same exceptions.
* **Ordered, chunked fan-out** — tasks are batched ``chunk_size`` at a
  time to amortize inter-process pickling, and results always come back
  in submission order regardless of completion order.
* **Telemetry fan-in** — when the parent has recorders installed, each
  worker runs its chunk under a private telemetry session and ships the
  metrics snapshot and span trees home; the executor merges them so
  ``--trace`` / ``--metrics`` output is complete across processes.

A failing task (for example a :class:`~repro.exceptions.QOCError` from an
unreachable fidelity target) cancels the remaining work, shuts the pool
down, and re-raises in the parent — no hung workers, no half-merged
results.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_all_start_methods, get_context
from typing import Any, List, Optional, Sequence

from repro import telemetry
from repro.config import ParallelConfig
from repro.parallel.worker import ChunkResult, run_chunk

__all__ = ["ParallelExecutor"]

logger = telemetry.get_logger("parallel.executor")


def _start_method() -> str:
    """Prefer fork (cheap, inherits the loaded interpreter) when available."""
    return "fork" if "fork" in get_all_start_methods() else "spawn"


class ParallelExecutor:
    """Runs picklable ``.run()`` tasks serially or across worker processes.

    The pool is created lazily on the first parallel :meth:`map` and torn
    down by :meth:`shutdown` (or the context manager), so a serial
    executor never pays any multiprocessing cost.
    """

    def __init__(self, workers: int = 0, chunk_size: int = 1, min_tasks: int = 2):
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.workers = max(0, int(workers))
        self.chunk_size = int(chunk_size)
        self.min_tasks = max(1, int(min_tasks))
        self._pool: Optional[ProcessPoolExecutor] = None

    @classmethod
    def from_config(cls, config: Optional[ParallelConfig]) -> "ParallelExecutor":
        config = config or ParallelConfig()
        return cls(
            workers=config.resolved_workers(),
            chunk_size=config.chunk_size,
            min_tasks=config.min_tasks,
        )

    @property
    def is_parallel(self) -> bool:
        """Whether this executor may fan work out to worker processes."""
        return self.workers >= 1

    # -- execution -------------------------------------------------------

    def map(self, tasks: Sequence[Any]) -> List[Any]:
        """Run every task and return their results in task order."""
        tasks = list(tasks)
        if not tasks:
            return []
        if not self.is_parallel or len(tasks) < self.min_tasks:
            return [task.run() for task in tasks]
        return self._map_parallel(tasks)

    def _map_parallel(self, tasks: List[Any]) -> List[Any]:
        pool = self._ensure_pool()
        metrics = telemetry.get_metrics()
        tracer = telemetry.get_tracer()
        collect = metrics.enabled or tracer.enabled
        chunks = [
            tasks[i : i + self.chunk_size]
            for i in range(0, len(tasks), self.chunk_size)
        ]
        metrics.gauge("parallel.workers", self.workers)
        metrics.inc("parallel.dispatches")
        metrics.inc("parallel.tasks", len(tasks))
        submitted_at = time.perf_counter()
        futures = [pool.submit(run_chunk, chunk, collect) for chunk in chunks]
        results: List[Any] = []
        try:
            for future in futures:
                chunk_result: ChunkResult = future.result()
                self._merge_telemetry(chunk_result, submitted_at)
                results.extend(chunk_result.values)
        except BaseException:
            # a worker failed (or the wait was interrupted): stop handing
            # out queued chunks and tear the pool down before re-raising
            for future in futures:
                future.cancel()
            self.shutdown()
            raise
        return results

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=get_context(_start_method()),
            )
            logger.debug(
                "started %d-worker pool (%s)", self.workers, _start_method()
            )
        return self._pool

    @staticmethod
    def _merge_telemetry(chunk: ChunkResult, submitted_at: float) -> None:
        """Fold one worker chunk's recorders into the parent's."""
        metrics = telemetry.get_metrics()
        if chunk.metrics_state is not None and metrics.enabled:
            metrics.merge_state(chunk.metrics_state)
        tracer = telemetry.get_tracer()
        if chunk.span_states and tracer.enabled:
            # rebase worker-clock timestamps: the worker session opened
            # (clock_origin) just after the parent submitted the chunk
            shift = submitted_at - chunk.clock_origin
            for state in chunk.span_states:
                tracer.attach(
                    telemetry.span_from_state(state, shift=shift, tid=chunk.pid)
                )

    # -- lifecycle -------------------------------------------------------

    def shutdown(self) -> None:
        """Stop the worker pool (idempotent; serial executors are no-ops)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

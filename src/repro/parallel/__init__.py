"""Parallel compilation engine: multi-process synthesis and QOC.

EPOC's two hot stages are embarrassingly parallel — every partition block
is an independent synthesis problem and every regrouped unitary an
independent QOC problem.  This package fans both out across worker
processes:

* :class:`ParallelExecutor` — ordered, chunked process-pool map with a
  serial fallback (``workers=0``) and telemetry fan-in.
* :class:`PulseTask` / :class:`SynthesisTask` — the picklable work units.
* ``PulseLibrary.get_pulses`` (in :mod:`repro.qoc.library`) adds the
  singleflight step: identical unitaries are deduplicated *before*
  dispatch so N occurrences cost one GRAPE binary search.

Configure via ``EPOCConfig.parallel``, the ``REPRO_WORKERS`` environment
variable, or the CLI's ``--workers/-j`` flag.  Seeded GRAPE makes the
parallel schedule bitwise-identical to the serial one.
"""

from repro.parallel.executor import ParallelExecutor
from repro.parallel.worker import ChunkResult, PulseTask, SynthesisTask, run_chunk

__all__ = [
    "ParallelExecutor",
    "PulseTask",
    "SynthesisTask",
    "ChunkResult",
    "run_chunk",
]

"""Concrete racing portfolios for synthesis and QOC.

:func:`raced_synthesize_unitary` races the canonical QSearch → LEAP →
analytic fallback chain; :func:`raced_minimal_latency_pulse` races the
warm-started pulse duration search against differently-seeded cold
GRAPE restarts.  Both run the *same* strategy functions as the
sequential paths (same seeds, same retry policies), so the default
deterministic winner — the highest-priority acceptable result — is the
result the sequential chain would have produced whenever it succeeds,
which is what the serial-vs-raced bitwise equivalence test pins.

The imports of the strategy implementations are deferred to call time:
``repro.racing`` must stay importable from inside ``repro.synthesis``
and ``repro.qoc`` (they import :mod:`repro.racing.cancel` for the
cooperative polling primitives) without a module-level cycle.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.config import QOCConfig, RacingConfig, ResilienceConfig
from repro.racing.race import StrategyAttempt, StrategyRace
from repro.resilience.policy import Deadline

__all__ = ["raced_synthesize_unitary", "raced_minimal_latency_pulse"]

logger = telemetry.get_logger("racing.portfolios")

#: seed stride between hedged GRAPE restarts — far from the small
#: ``seed + attempt`` offsets the in-search retry loop uses, so a hedge
#: never duplicates a retry's initialization.
_QOC_RESTART_SEED_STRIDE = 101


def _width_signature(dim: int) -> str:
    """Block-width breaker/stats signature (``"2q"``, ``"3q"``, ...)."""
    return f"{max(int(dim).bit_length() - 1, 1)}q"


def raced_synthesize_unitary(
    target: np.ndarray,
    threshold: float,
    max_cnots: int,
    qsearch_max_nodes: int,
    seed: int,
    couplings: Optional[List[Tuple[int, int]]],
    resilience: Optional[ResilienceConfig],
    racing: RacingConfig,
):
    """Race QSearch, LEAP and the analytic decomposition for one target.

    Priorities mirror the sequential fallback chain, so the
    deterministic winner is exactly what
    :func:`repro.synthesis.synthesize_unitary` would return; hedging
    only changes *when* the fallbacks start computing.  The analytic
    attempt is breaker-exempt — it is the guaranteed fallback and must
    always be available.
    """
    from repro.synthesis import (
        _analytic_strategy,
        _leap_strategy,
        _qsearch_strategy,
    )
    from repro.resilience.policy import RetryPolicy

    target = np.asarray(target, dtype=complex)
    metrics = telemetry.get_metrics()
    policy = RetryPolicy.from_config(resilience)
    attempts = [
        StrategyAttempt(
            name="qsearch",
            run=lambda cancel, deadline: _qsearch_strategy(
                target,
                threshold=threshold,
                max_cnots=max_cnots,
                qsearch_max_nodes=qsearch_max_nodes,
                seed=seed,
                couplings=couplings,
                policy=policy,
                deadline=deadline,
                cancel=cancel,
            ),
        ),
        StrategyAttempt(
            name="leap",
            run=lambda cancel, deadline: _leap_strategy(
                target,
                threshold=threshold,
                max_cnots=max_cnots,
                seed=seed,
                couplings=couplings,
                policy=policy,
                deadline=deadline,
                cancel=cancel,
            ),
        ),
        StrategyAttempt(
            name="analytic",
            run=lambda cancel, deadline: _analytic_strategy(target),
            breaker_exempt=True,
        ),
    ]
    race = StrategyRace(racing, site="synthesis")
    result = race.run(attempts, signature=_width_signature(target.shape[0]))
    winner = result.winner
    if winner is None:
        # every strategy failed or was cancelled — surface the
        # highest-priority error (the analytic attempt only fails on
        # genuinely malformed targets, so this is the pathological case)
        for outcome in result.outcomes:
            if outcome.error is not None:
                raise outcome.error
        raise RuntimeError(
            f"synthesis race at {result.signature} ended with no outcome"
        )
    # mirror the sequential chain's fallback accounting so dashboards
    # read the same counters whether or not racing is on
    if winner.name != "qsearch":
        metrics.inc("resilience.fallbacks")
        metrics.inc("synthesis.fallback_leap")
    if winner.name == "analytic":
        metrics.inc("resilience.fallbacks")
        metrics.inc("synthesis.fallback_analytic")
    return winner.result


def raced_minimal_latency_pulse(
    target: np.ndarray,
    qubits: Tuple[int, ...],
    config: Optional[QOCConfig],
    hardware,
    resilience: Optional[ResilienceConfig],
    racing: RacingConfig,
    warm_controls: Optional[np.ndarray] = None,
    first_probe_eig=None,
):
    """Race the pulse duration search against reseeded cold restarts.

    The primary attempt is the exact sequential
    :func:`~repro.qoc.latency.minimal_latency_pulse` call — warm starts,
    in-search retries, degradation policy and all — so whenever it
    converges the deterministic winner is bitwise-identical to the
    serial pulse.  Hedges are cold searches from stride-separated seeds;
    a converged hedge only ever *wins* when the primary fails to
    converge (its result is then ``unacceptable``/degraded), which
    upgrades the output instead of changing it.
    """
    from repro.qoc.latency import minimal_latency_pulse

    config = config or QOCConfig()
    target = np.asarray(target, dtype=complex)
    qoc_budget = (
        resilience.qoc_timeout_seconds if resilience is not None else None
    )

    def _tighten(deadline: Deadline) -> Deadline:
        # an attempt honours whichever budget is stricter: the race's
        # per-strategy timeout or the configured QOC search timeout
        if qoc_budget is None:
            return deadline
        remaining = deadline.remaining()
        if remaining is None or qoc_budget < remaining:
            return Deadline(qoc_budget)
        return deadline

    def _acceptable(pulse) -> bool:
        return getattr(pulse, "source", "") == "grape"

    def _primary(cancel, deadline):
        return minimal_latency_pulse(
            target,
            qubits,
            config=config,
            hardware=hardware,
            resilience=resilience,
            deadline=_tighten(deadline),
            warm_controls=warm_controls,
            first_probe_eig=first_probe_eig,
            cancel=cancel,
        )

    def _restart(rank: int):
        restart_config = replace(
            config, seed=config.seed + _QOC_RESTART_SEED_STRIDE * rank
        )

        def _run(cancel, deadline):
            return minimal_latency_pulse(
                target,
                qubits,
                config=restart_config,
                hardware=hardware,
                resilience=resilience,
                deadline=_tighten(deadline),
                cancel=cancel,
            )

        return _run

    attempts = [
        StrategyAttempt(name="grape", run=_primary, acceptable=_acceptable)
    ]
    for rank in range(1, racing.qoc_restarts + 1):
        attempts.append(
            StrategyAttempt(
                name=f"grape-restart-{rank}",
                run=_restart(rank),
                acceptable=_acceptable,
            )
        )
    race = StrategyRace(racing, site="qoc")
    result = race.run(attempts, signature=_width_signature(target.shape[0]))
    if result.winner is not None:
        return result.winner.result
    # nothing converged: fall back to the primary's own outcome so raced
    # and serial runs degrade (or raise) identically
    for outcome in result.outcomes:
        if outcome.status == "unacceptable" and outcome.result is not None:
            return outcome.result
    for outcome in result.outcomes:
        if outcome.error is not None:
            raise outcome.error
    raise RuntimeError(
        f"qoc race at {result.signature} ended with no outcome"
    )

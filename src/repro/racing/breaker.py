"""Per-strategy circuit breakers for the racing portfolios.

A strategy that keeps failing for a class of targets (e.g. QSearch on
3-qubit blocks that always exhaust its node budget) should stop being
launched for every block in that class: each ``(site, strategy,
signature)`` triple gets a :class:`CircuitBreaker` that opens after a
configurable run of consecutive failures, rejects further attempts for a
cooldown period, then lets a single *half-open* probe through — success
closes the breaker, another failure re-opens it.

Breakers live on a context-scoped :class:`BreakerBoard` (mirroring the
installed bus and metrics) so every race in a run shares failure
history while concurrent service jobs stay isolated;
:meth:`BreakerBoard.snapshot` feeds the run ledger's racing column.
"""

from __future__ import annotations

import contextvars
import threading
import time
from typing import Callable, Dict, Optional, Tuple

__all__ = [
    "CircuitBreaker",
    "BreakerBoard",
    "get_breaker_board",
    "set_breaker_board",
]

#: breaker states (also the strings reported by ``snapshot``).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with a timed half-open probe.

    ``failure_threshold=0`` disables the breaker entirely (always
    closed).  Thread-safe; the clock is injectable so tests can walk
    through cooldowns without sleeping.
    """

    __slots__ = (
        "failure_threshold",
        "cooldown_seconds",
        "_clock",
        "_lock",
        "_state",
        "_consecutive_failures",
        "_opened_at",
        "_times_opened",
    )

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 0:
            raise ValueError("CircuitBreaker.failure_threshold must be >= 0")
        if cooldown_seconds < 0.0:
            raise ValueError("CircuitBreaker.cooldown_seconds must be >= 0")
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._times_opened = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        # caller holds the lock; an open breaker past its cooldown reads
        # as half-open (the transition is committed by ``allow``)
        if (
            self._state == OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.cooldown_seconds
        ):
            return HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """Whether the next attempt may run (consumes the half-open slot)."""
        if self.failure_threshold == 0:
            return True
        with self._lock:
            state = self._effective_state()
            if state == CLOSED:
                return True
            if state == HALF_OPEN and self._state == OPEN:
                # commit the cooldown transition and hand out the single
                # probe slot; further calls see HALF_OPEN and are refused
                self._state = HALF_OPEN
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = CLOSED
            self._consecutive_failures = 0
            self._opened_at = None

    def record_failure(self) -> None:
        if self.failure_threshold == 0:
            return
        with self._lock:
            self._consecutive_failures += 1
            if (
                self._state == HALF_OPEN
                or self._consecutive_failures >= self.failure_threshold
            ):
                self._state = OPEN
                self._opened_at = self._clock()
                self._times_opened += 1

    def describe(self) -> Dict[str, object]:
        with self._lock:
            return {
                "state": self._effective_state(),
                "consecutive_failures": self._consecutive_failures,
                "times_opened": self._times_opened,
            }


class BreakerBoard:
    """All breakers of a process, keyed ``(site, strategy, signature)``."""

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: Dict[Tuple[str, str, str], CircuitBreaker] = {}

    def breaker(
        self, site: str, strategy: str, signature: str
    ) -> CircuitBreaker:
        key = (site, strategy, signature)
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(
                    failure_threshold=self.failure_threshold,
                    cooldown_seconds=self.cooldown_seconds,
                    clock=self._clock,
                )
                self._breakers[key] = breaker
            return breaker

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """State of every breaker, keyed ``site:strategy:signature``."""
        with self._lock:
            items = list(self._breakers.items())
        return {
            f"{site}:{strategy}:{signature}": breaker.describe()
            for (site, strategy, signature), breaker in sorted(items)
        }


#: the installed board; built lazily with default thresholds (races built
#: from a :class:`~repro.config.RacingConfig` re-key thresholds at
#: construction via :func:`get_breaker_board`).  Context-scoped like the
#: event bus: concurrent service jobs accumulate failure history on their
#: own boards instead of polluting each other's breaker state, while a
#: single-job process still shares one board across every race in the run.
_board: contextvars.ContextVar[Optional[BreakerBoard]] = contextvars.ContextVar(
    "repro_breaker_board", default=None
)
_board_lock = threading.Lock()


def get_breaker_board(
    failure_threshold: Optional[int] = None,
    cooldown_seconds: Optional[float] = None,
) -> BreakerBoard:
    """The current context's board, created on first use.

    The first caller's thresholds win (later thresholds only apply to
    breakers not yet created, via the board defaults being updated) —
    in practice every race in a run shares one ``RacingConfig``.
    """
    with _board_lock:
        board = _board.get()
        if board is None:
            board = BreakerBoard(
                failure_threshold=(
                    3 if failure_threshold is None else failure_threshold
                ),
                cooldown_seconds=(
                    30.0 if cooldown_seconds is None else cooldown_seconds
                ),
            )
            _board.set(board)
        else:
            if failure_threshold is not None:
                board.failure_threshold = failure_threshold
            if cooldown_seconds is not None:
                board.cooldown_seconds = cooldown_seconds
        return board


def set_breaker_board(board: Optional[BreakerBoard]) -> Optional[BreakerBoard]:
    """Install ``board`` in the current context (``None`` resets); returns
    the previous one."""
    with _board_lock:
        previous = _board.get()
        _board.set(board)
        return previous

"""Hedged strategy racing (see README "Strategy racing").

Instead of paying every fallback timeout in sequence, a raced
compilation runs its strategy portfolio concurrently:

* :mod:`repro.racing.race` — the :class:`StrategyRace` engine: hedged
  starts (lower priorities wait ``hedge_delay_seconds`` per rank),
  cooperative cancellation of losers, deterministic priority-ranked or
  first-finisher winner selection.
* :mod:`repro.racing.cancel` — the :class:`CancelToken` polled at the
  same loop points that poll a :class:`~repro.resilience.policy.Deadline`,
  the ambient per-job :func:`cancel_scope` the compile service uses for
  client-initiated cancellation, plus the ``synthesis.stall``/
  ``qoc.stall`` fault-injection shim.
* :mod:`repro.racing.breaker` — per-``(site, strategy, block-width)``
  :class:`CircuitBreaker`\\ s with half-open recovery probes, on a
  context-scoped :class:`BreakerBoard`.
* :mod:`repro.racing.stats` — always-on per-strategy attempt/win
  counters feeding the run ledger and ``repro stats strategies``.
* :mod:`repro.racing.portfolios` — the concrete portfolios wired into
  :func:`repro.synthesis.synthesize_unitary` and
  :func:`repro.qoc.latency.minimal_latency_pulse`.

Racing is configured by :class:`repro.config.RacingConfig` (CLI:
``--race``, ``--hedge-delay``, ``--race-mode``) and is off by default;
the default ``deterministic`` mode changes wall-clock but never output.
"""

from __future__ import annotations

from repro.racing.breaker import (
    BreakerBoard,
    CircuitBreaker,
    get_breaker_board,
    set_breaker_board,
)
from repro.racing.cancel import (
    CancelToken,
    cancel_scope,
    cooperative_stall,
    current_token,
    poll_cancellation,
)
from repro.racing.portfolios import (
    raced_minimal_latency_pulse,
    raced_synthesize_unitary,
)
from repro.racing.race import (
    AttemptOutcome,
    RaceResult,
    StrategyAttempt,
    StrategyRace,
)
from repro.racing.stats import RaceStats, get_race_stats, set_race_stats

__all__ = [
    "StrategyRace",
    "StrategyAttempt",
    "AttemptOutcome",
    "RaceResult",
    "CancelToken",
    "cancel_scope",
    "current_token",
    "poll_cancellation",
    "cooperative_stall",
    "CircuitBreaker",
    "BreakerBoard",
    "get_breaker_board",
    "set_breaker_board",
    "RaceStats",
    "get_race_stats",
    "set_race_stats",
    "raced_synthesize_unitary",
    "raced_minimal_latency_pulse",
]

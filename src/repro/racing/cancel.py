"""Cooperative cancellation for racing strategy threads.

The compilation strategies are CPU-bound library code, so a losing
strategy cannot be preempted from outside; instead the same loop points
that already poll a :class:`~repro.resilience.policy.Deadline` (QSearch
node expansion, LEAP level growth, GRAPE probes) also poll a shared
:class:`CancelToken` and unwind with
:class:`~repro.exceptions.RaceCancelled` when it is set.

:func:`cooperative_stall` is the injection shim for the
``synthesis.stall`` / ``qoc.stall`` fault sites: it sleeps in small
increments so an injected straggler still honours cancellation and
deadlines — exactly like a real slow strategy built on the cooperative
polling contract.
"""

from __future__ import annotations

import contextvars
import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.exceptions import RaceCancelled
from repro.resilience.faults import fault_params
from repro.resilience.policy import Deadline

__all__ = [
    "CancelToken",
    "cancel_scope",
    "cooperative_stall",
    "current_token",
    "poll_cancellation",
]

#: how often an injected stall re-polls its token/deadline.
_STALL_POLL_SECONDS = 0.01


class CancelToken:
    """A one-way latch telling a strategy thread to stop working.

    Thread-safe (backed by a :class:`threading.Event`); ``cancel`` is
    idempotent and the first reason sticks.
    """

    __slots__ = ("_event", "_reason", "_lock")

    def __init__(self):
        self._event = threading.Event()
        self._reason: Optional[str] = None
        self._lock = threading.Lock()

    def cancel(self, reason: str = "cancelled") -> None:
        with self._lock:
            if self._reason is None:
                self._reason = reason
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    @property
    def reason(self) -> Optional[str]:
        return self._reason

    def raise_if_cancelled(self) -> None:
        """Unwind with :class:`RaceCancelled` when the token is set."""
        if self._event.is_set():
            raise RaceCancelled(self._reason or "cancelled")


#: The ambient cancel token of the current context.  The compile service
#: installs one per job (via :func:`cancel_scope`) so *every* cooperative
#: poll point inside that job — GRAPE probes, QSearch expansion, LEAP
#: level growth — honours a client's ``cancel`` request without the token
#: having to be threaded through every call signature.  Racing threads
#: inherit it through ``StrategyRace``'s context copy, so a job cancel
#: also stops in-flight racing strategies.
_current: contextvars.ContextVar[Optional[CancelToken]] = contextvars.ContextVar(
    "repro_cancel_token", default=None
)


def current_token() -> Optional[CancelToken]:
    """The ambient cancel token installed in the current context, if any."""
    return _current.get()


@contextmanager
def cancel_scope(token: CancelToken) -> Iterator[CancelToken]:
    """Make ``token`` the ambient cancel token for the duration of the block."""
    handle = _current.set(token)
    try:
        yield token
    finally:
        _current.reset(handle)


def poll_cancellation(cancel: Optional[CancelToken] = None) -> None:
    """Raise :class:`RaceCancelled` if ``cancel`` *or* the ambient token is set.

    This is the single poll primitive the cooperative loop points call:
    an explicit token (a racing strategy's own) and the ambient job-level
    token are both honoured, so losing a race and a service-side job
    cancel use the same unwind path.
    """
    if cancel is not None:
        cancel.raise_if_cancelled()
    ambient = _current.get()
    if ambient is not None and ambient is not cancel:
        ambient.raise_if_cancelled()


def cooperative_stall(
    site: str,
    cancel: Optional[CancelToken] = None,
    deadline: Optional[Deadline] = None,
    **context: object,
) -> bool:
    """Sleep out an injected ``<site>@seconds=N`` straggler fault.

    Returns ``True`` when a stall spec fired (even if cut short).  The
    sleep is cooperative: it polls ``cancel`` (raising
    :class:`RaceCancelled`) and ``deadline`` (returning early so the
    caller's own deadline handling takes over) every few milliseconds,
    mirroring how a genuinely slow strategy would behave under racing.
    """
    params = fault_params(site, ("seconds",), **context)
    if params is None:
        return False
    try:
        seconds = float(params.get("seconds", "0") or 0.0)
    except ValueError:
        raise ValueError(
            f"fault site {site!r} expects a numeric seconds= parameter, "
            f"got {params.get('seconds')!r}"
        ) from None
    end = time.monotonic() + max(0.0, seconds)
    while True:
        poll_cancellation(cancel)
        if deadline is not None and deadline.expired:
            return True
        remaining = end - time.monotonic()
        if remaining <= 0.0:
            return True
        time.sleep(min(_STALL_POLL_SECONDS, remaining))

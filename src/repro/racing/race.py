"""The hedged strategy race engine.

A :class:`StrategyRace` runs a priority-ordered portfolio of
:class:`StrategyAttempt`\\ s concurrently on daemon threads.  The primary
(priority 0) starts immediately; each lower-priority hedge starts only
after one more multiple of ``hedge_delay_seconds`` — or immediately once
every higher-priority attempt has already resolved without an acceptable
result — so the common fast case pays nothing for the hedges.

Winner selection:

* ``deterministic`` (default) — acceptable results are ranked by
  canonical strategy priority: the race waits for attempt *i* only
  until every attempt *j < i* has resolved unacceptably, then declares
  *i* the winner the moment it resolves acceptably.  The winning result
  is therefore a pure function of the portfolio and its inputs — never
  of thread timing — which is what keeps raced runs bitwise-identical
  to serial ones (see DESIGN.md).
* ``latency`` — the first acceptable finisher in wall-clock order wins.

Losers are cancelled cooperatively through their
:class:`~repro.racing.cancel.CancelToken` and joined for a bounded
grace period; stragglers are abandoned (daemon threads polling a set
token, so they unwind on their own).  Every attempt outcome feeds the
per-``(site, strategy, signature)`` circuit breaker and the racing
stats recorder.
"""

from __future__ import annotations

import contextvars
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro import telemetry
from repro.config import RacingConfig
from repro.exceptions import RaceCancelled
from repro.racing.breaker import BreakerBoard, get_breaker_board
from repro.racing.cancel import CancelToken
from repro.racing.stats import RaceStats, get_race_stats
from repro.resilience.policy import Deadline

__all__ = ["StrategyAttempt", "AttemptOutcome", "RaceResult", "StrategyRace"]

logger = telemetry.get_logger("racing.race")

#: outcome states an attempt can end in.
_RESOLVED = ("acceptable", "unacceptable", "failed", "cancelled")

#: how often coordinator waits re-check for stuck threads (a backstop —
#: resolutions notify the condition immediately).
_WAIT_SLICE_SECONDS = 0.05


@dataclass
class StrategyAttempt:
    """One competitor in a race.

    ``run(cancel, deadline)`` does the work, polling both cooperatively;
    ``acceptable`` classifies a returned result (exceptions are always
    failures).  ``breaker_exempt`` marks a guaranteed fallback that must
    never be skipped by an open breaker.
    """

    name: str
    run: Callable[[CancelToken, Deadline], object]
    acceptable: Optional[Callable[[object], bool]] = None
    breaker_exempt: bool = False


@dataclass
class AttemptOutcome:
    """What happened to one attempt (also the race's stats record)."""

    name: str
    priority: int
    status: str = "pending"
    result: object = None
    error: Optional[BaseException] = None
    seconds: float = 0.0
    timed_out: bool = False
    abandoned: bool = False
    #: wall-clock resolution order among acceptable outcomes (latency mode).
    arrival: int = -1


@dataclass
class RaceResult:
    """Winner (``None`` when nothing acceptable) plus every outcome."""

    site: str
    signature: str
    winner: Optional[AttemptOutcome]
    outcomes: List[AttemptOutcome] = field(default_factory=list)

    def outcome(self, name: str) -> Optional[AttemptOutcome]:
        for outcome in self.outcomes:
            if outcome.name == name:
                return outcome
        return None


class StrategyRace:
    """Run hedged strategy portfolios under one :class:`RacingConfig`."""

    def __init__(
        self,
        config: RacingConfig,
        site: str,
        board: Optional[BreakerBoard] = None,
        stats: Optional[RaceStats] = None,
    ):
        self.config = config
        self.site = site
        self.board = board if board is not None else get_breaker_board(
            failure_threshold=config.breaker_failures,
            cooldown_seconds=config.breaker_cooldown_seconds,
        )
        self.stats = stats if stats is not None else get_race_stats()

    # -- the engine ----------------------------------------------------

    def run(
        self, attempts: Sequence[StrategyAttempt], signature: str = ""
    ) -> RaceResult:
        if not attempts:
            raise ValueError("StrategyRace.run needs at least one attempt")
        metrics = telemetry.get_metrics()
        start_time = time.monotonic()
        outcomes = [
            AttemptOutcome(name=attempt.name, priority=index)
            for index, attempt in enumerate(attempts)
        ]
        cond = threading.Condition()
        closed = [False]
        arrival_counter = [0]
        # Fresh threads start from an *empty* contextvars context, which
        # would hide the caller's installed bus / metrics / breaker board /
        # cancel scope from the strategy bodies.  Capture the caller's
        # context once, before any thread or hedge timer spawns, and run
        # each body inside its own copy (a single Context object cannot be
        # entered by two threads at once).
        base_ctx = contextvars.copy_context()

        # breaker gating: skipped attempts never start
        runnable: List[int] = []
        breaker_enabled = self.config.breaker_failures > 0
        for index, attempt in enumerate(attempts):
            if (
                breaker_enabled
                and not attempt.breaker_exempt
                and not self.board.breaker(
                    self.site, attempt.name, signature
                ).allow()
            ):
                outcomes[index].status = "skipped"
                logger.info(
                    "race %s/%s: breaker open for %s — skipping",
                    self.site,
                    signature,
                    attempt.name,
                )
            else:
                runnable.append(index)
        if not runnable:
            # every strategy tripped its breaker; force the lowest-priority
            # attempt (the guaranteed fallback) rather than returning empty
            index = len(attempts) - 1
            outcomes[index].status = "pending"
            runnable = [index]

        tokens = {index: CancelToken() for index in runnable}
        threads: dict = {}
        timers: List[threading.Timer] = []

        def _spawn_locked(index: int) -> None:
            # caller holds ``cond``
            if closed[0] or outcomes[index].status != "pending":
                return
            outcomes[index].status = "running"
            # every _spawn_locked call holds ``cond``, so entering
            # ``base_ctx`` to copy it is serialized even from timer threads
            ctx = base_ctx.run(contextvars.copy_context)
            thread = threading.Thread(
                target=ctx.run,
                args=(_body, index),
                name=f"race-{self.site}-{attempts[index].name}",
                daemon=True,
            )
            threads[index] = thread
            thread.start()

        def _spawn_from_timer(index: int) -> None:
            with cond:
                _spawn_locked(index)

        def _body(index: int) -> None:
            attempt = attempts[index]
            token = tokens[index]
            deadline = Deadline(self.config.strategy_timeout_seconds)
            began = time.monotonic()
            status = "failed"
            result: object = None
            error: Optional[BaseException] = None
            try:
                result = attempt.run(token, deadline)
                ok = (
                    attempt.acceptable(result)
                    if attempt.acceptable is not None
                    else True
                )
                status = "acceptable" if ok else "unacceptable"
            except RaceCancelled as exc:
                status = "cancelled"
                error = exc
            except Exception as exc:  # noqa: BLE001 — a failure, not a crash
                status = "failed"
                error = exc
            with cond:
                outcome = outcomes[index]
                outcome.status = status
                outcome.result = result
                outcome.error = error
                outcome.seconds = time.monotonic() - began
                outcome.timed_out = status == "failed" and deadline.expired
                if status == "acceptable":
                    outcome.arrival = arrival_counter[0]
                    arrival_counter[0] += 1
                cond.notify_all()

        hedge_delay = self.config.hedge_delay_seconds
        with cond:
            for rank, index in enumerate(runnable):
                delay = rank * hedge_delay
                if delay <= 0.0:
                    _spawn_locked(index)
                else:
                    timer = threading.Timer(
                        delay, _spawn_from_timer, args=(index,)
                    )
                    timer.daemon = True
                    timers.append(timer)
                    timer.start()

            if self.config.mode == "latency":
                winner = self._await_latency_winner(
                    cond, outcomes, runnable, _spawn_locked
                )
            else:
                winner = self._await_deterministic_winner(
                    cond, outcomes, runnable, _spawn_locked
                )
            closed[0] = True

        for timer in timers:
            timer.cancel()
        # cancel the losers (and, with no winner, nothing is left running)
        for index, token in tokens.items():
            outcome = outcomes[index]
            if outcome.status == "running" and (
                winner is None or index != winner.priority
            ):
                token.cancel(
                    f"lost race {self.site}/{signature or '-'} to "
                    f"{winner.name if winner else 'nobody'}"
                )
        grace = Deadline(self.config.cancel_grace_seconds)
        for index, thread in threads.items():
            remaining = grace.remaining()
            thread.join(timeout=remaining if remaining is not None else None)
            if thread.is_alive():
                with cond:
                    outcomes[index].abandoned = True

        with cond:
            self._record(metrics, outcomes, winner, signature)
            metrics.observe(
                f"racing.{self.site}.seconds", time.monotonic() - start_time
            )
            # unstarted hedges stay "pending": the hedge was never needed
            return RaceResult(
                site=self.site,
                signature=signature,
                winner=winner,
                outcomes=outcomes,
            )

    # -- winner selection ----------------------------------------------

    def _await_deterministic_winner(
        self, cond, outcomes, runnable, spawn_locked
    ) -> Optional[AttemptOutcome]:
        """Priority-ranked selection (caller holds ``cond``).

        Visits runnable attempts in priority order, waiting for each to
        resolve; the first acceptable one wins.  An attempt whose turn
        arrives while still unstarted (its hedge timer has not fired but
        every higher priority already failed) is started immediately.
        """
        for index in runnable:
            while True:
                status = outcomes[index].status
                if status in _RESOLVED:
                    break
                if status == "pending":
                    spawn_locked(index)
                cond.wait(timeout=_WAIT_SLICE_SECONDS)
            if outcomes[index].status == "acceptable":
                return outcomes[index]
        return None

    def _await_latency_winner(
        self, cond, outcomes, runnable, spawn_locked
    ) -> Optional[AttemptOutcome]:
        """First-acceptable-finisher selection (caller holds ``cond``)."""
        while True:
            acceptable = [
                outcomes[index]
                for index in runnable
                if outcomes[index].status == "acceptable"
            ]
            if acceptable:
                return min(acceptable, key=lambda outcome: outcome.arrival)
            unresolved = [
                index
                for index in runnable
                if outcomes[index].status not in _RESOLVED
            ]
            if not unresolved:
                return None
            if all(
                outcomes[index].status == "pending" for index in unresolved
            ):
                # nothing running and nothing acceptable: pull the next
                # hedge forward instead of idling out its timer
                spawn_locked(unresolved[0])
            cond.wait(timeout=_WAIT_SLICE_SECONDS)

    # -- accounting ----------------------------------------------------

    def _record(self, metrics, outcomes, winner, signature: str) -> None:
        self.stats.record_race()
        metrics.inc("racing.races")
        breaker_enabled = self.config.breaker_failures > 0
        for outcome in outcomes:
            name = outcome.name
            prefix = f"racing.{self.site}.{name}"
            if outcome.status == "pending":
                continue  # hedge that was never needed
            if outcome.status == "skipped":
                self.stats.record(self.site, signature, name, "skipped")
                metrics.inc(f"{prefix}.skipped")
                continue
            self.stats.record(self.site, signature, name, "attempts")
            metrics.inc(f"{prefix}.attempts")
            if outcome.status == "cancelled" or outcome.status == "running":
                self.stats.record(self.site, signature, name, "cancellations")
                metrics.inc(f"{prefix}.cancellations")
            elif outcome.status == "failed":
                self.stats.record(self.site, signature, name, "failures")
                metrics.inc(f"{prefix}.failures")
                if outcome.timed_out:
                    self.stats.record(self.site, signature, name, "timeouts")
                    metrics.inc(f"{prefix}.timeouts")
                if breaker_enabled:
                    self.board.breaker(
                        self.site, name, signature
                    ).record_failure()
            else:  # acceptable / unacceptable: the strategy functioned
                if breaker_enabled:
                    self.board.breaker(
                        self.site, name, signature
                    ).record_success()
            if outcome.abandoned:
                self.stats.record(self.site, signature, name, "abandoned")
                metrics.inc(f"{prefix}.abandoned")
        if winner is not None:
            self.stats.record(self.site, signature, winner.name, "wins")
            metrics.inc(f"racing.{self.site}.{winner.name}.wins")

"""Per-strategy racing statistics, independent of the metrics registry.

The telemetry :class:`~repro.telemetry.metrics.MetricsRegistry` is a
disabled no-op unless a session installs one, but the run ledger needs
racing columns for *every* observed run — so the race engine records
into this always-on, thread-safe recorder as well.  Counters are keyed
``(site, signature, strategy)``; ``signature`` is the block-width class
(``"2q"``, ``"3q"``, ...) so ``repro stats strategies`` can report
portfolio win rates per block width.

The recorder is context-scoped (like the installed bus and breaker
board), so concurrent service jobs keep disjoint counters;
:class:`~repro.obs.observer.RunObserver` snapshots it at run start and
stores the per-run delta.
"""

from __future__ import annotations

import contextvars
import threading
from typing import Dict, Optional, Tuple

__all__ = ["RaceStats", "get_race_stats", "set_race_stats"]

#: counter names recorded per (site, signature, strategy).
OUTCOME_FIELDS = (
    "attempts",
    "wins",
    "cancellations",
    "failures",
    "timeouts",
    "skipped",
    "abandoned",
)


class RaceStats:
    """Thread-safe nested counters for race outcomes."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counts: Dict[Tuple[str, str, str], Dict[str, int]] = {}
        self._races = 0

    def record_race(self) -> None:
        with self._lock:
            self._races += 1

    def record(
        self, site: str, signature: str, strategy: str, outcome: str, n: int = 1
    ) -> None:
        if outcome not in OUTCOME_FIELDS:
            raise ValueError(
                f"unknown race outcome {outcome!r} "
                f"(expected one of {OUTCOME_FIELDS})"
            )
        key = (site, signature, strategy)
        with self._lock:
            counts = self._counts.setdefault(
                key, {field: 0 for field in OUTCOME_FIELDS}
            )
            counts[outcome] += n

    def snapshot(self) -> Dict[str, object]:
        """Plain-JSON view: ``{"races": N, "strategies": {key: {...}}}``.

        Strategy keys flatten to ``site|signature|strategy`` so the
        structure survives a JSON round-trip through the ledger intact.
        """
        with self._lock:
            return {
                "races": self._races,
                "strategies": {
                    f"{site}|{signature}|{strategy}": dict(counts)
                    for (site, signature, strategy), counts in sorted(
                        self._counts.items()
                    )
                },
            }

    @staticmethod
    def delta(
        start: Dict[str, object], end: Dict[str, object]
    ) -> Dict[str, object]:
        """The counts accrued between two :meth:`snapshot` calls.

        Zero-delta strategies are dropped so an unraced run stores an
        empty racing column.
        """
        start_strategies: Dict[str, Dict[str, int]] = dict(
            start.get("strategies", {})  # type: ignore[arg-type]
        )
        strategies: Dict[str, Dict[str, int]] = {}
        for key, counts in end.get("strategies", {}).items():  # type: ignore[union-attr]
            base = start_strategies.get(key, {})
            diff = {
                field: counts[field] - base.get(field, 0)
                for field in OUTCOME_FIELDS
                if counts[field] - base.get(field, 0)
            }
            if diff:
                strategies[key] = diff
        return {
            "races": int(end.get("races", 0)) - int(start.get("races", 0)),
            "strategies": strategies,
        }


#: context-scoped like the breaker board: each service job keeps its own
#: recorder, so per-run ledger deltas never mix two jobs' outcomes.
_stats: contextvars.ContextVar[Optional[RaceStats]] = contextvars.ContextVar(
    "repro_race_stats", default=None
)
_stats_lock = threading.Lock()


def get_race_stats() -> RaceStats:
    """The current context's recorder, created on first use."""
    with _stats_lock:
        stats = _stats.get()
        if stats is None:
            stats = RaceStats()
            _stats.set(stats)
        return stats


def set_race_stats(stats: Optional[RaceStats]) -> Optional[RaceStats]:
    """Install ``stats`` in the current context (``None`` resets); returns
    the previous one."""
    with _stats_lock:
        previous = _stats.get()
        _stats.set(stats)
        return previous

"""repro — a full reproduction of EPOC (DAC 2025).

EPOC is a pulse-generation framework that combines ZX-calculus
optimization, greedy circuit partitioning, VUG-based circuit synthesis and
GRAPE quantum optimal control to produce low-latency microwave pulse
schedules for quantum circuits.

Public API highlights
---------------------
* :class:`repro.circuits.QuantumCircuit` — circuit IR with QASM I/O.
* :func:`repro.zx.full_reduce` / :func:`repro.zx.optimize_circuit` — the
  ZX-calculus optimizer.
* :func:`repro.partition.greedy_partition` — Algorithm 1.
* :func:`repro.synthesis.synthesize_unitary` — Algorithm 2 (QSearch-style).
* :class:`repro.core.EPOCPipeline` — the end-to-end EPOC flow.
* :mod:`repro.baselines` — gate-based, AccQOC-like and PAQOC-like flows.
* :mod:`repro.telemetry` — tracing, metrics and logging for all of the
  above (``telemetry.telemetry_session()``, ``--trace`` / ``--metrics``).
"""

from repro._version import __version__
from repro.config import EPOCConfig, ParallelConfig, ResilienceConfig

__all__ = ["__version__", "EPOCConfig", "ParallelConfig", "ResilienceConfig"]

"""Circuit extraction from graph-like ZX-diagrams.

Implements the frontier-based extraction algorithm (Duncan, Kissinger,
Perdrix, van de Wetering, *Graph-theoretic Simplification of Quantum
Circuits with the ZX-calculus*): peel gates off the output side of the
diagram, advancing a frontier of spiders toward the inputs.  Progress is
guaranteed for diagrams that admit a gflow, which every rewrite used by
:func:`repro.zx.simplify.full_reduce` preserves.

The extracted gate vocabulary is {rz, h, cz, cx, swap}; the caller usually
post-processes with :func:`repro.zx.peephole.basic_optimization`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.exceptions import ZXError
from repro.circuits.circuit import QuantumCircuit
from repro.linalg.gf2 import GF2Matrix
from repro.zx.graph import EdgeType, VertexType, ZXGraph, PHASE_TOL

__all__ = ["extract_circuit"]

_MAX_ITERATIONS_FACTOR = 20


def extract_circuit(graph: ZXGraph, blocksize: int = 4) -> QuantumCircuit:
    """Extract an equivalent circuit from a graph-like ZX-diagram.

    The diagram is consumed (work on a copy if you need it afterwards) and
    must be graph-like: only Z spiders, spider-spider edges all Hadamard.
    Raises :class:`ZXError` when the diagram has no extractable structure
    (e.g. it does not come from a unitary circuit).
    """
    if not graph.is_graph_like():
        raise ZXError("extraction requires a graph-like diagram; run full_reduce")
    if len(graph.inputs) != len(graph.outputs):
        raise ZXError("extraction requires equal numbers of inputs and outputs")
    n = len(graph.outputs)
    rev_gates: List[Tuple] = []  # gates peeled from the output side, reversed

    _insert_boundary_dummies(graph)

    qubit_of_output = {o: q for q, o in enumerate(graph.outputs)}
    done: Set[int] = set()
    iterations = 0
    max_iterations = _MAX_ITERATIONS_FACTOR * (graph.num_vertices() + n + 1)

    while True:
        iterations += 1
        if iterations > max_iterations:  # pragma: no cover - safety valve
            raise ZXError("extraction did not converge; diagram may lack gflow")
        _clean_frontier(graph, qubit_of_output, done, rev_gates)
        frontier = _current_frontier(graph, qubit_of_output, done)
        if not frontier:
            break
        advanced = _advance_frontier(graph, frontier, rev_gates, blocksize)
        if not advanced:
            raise ZXError(
                "extraction is stuck: no frontier vertex can advance "
                "(diagram may contain phase gadgets or lack gflow)"
            )

    _finalize_permutation(graph, rev_gates)
    circuit = QuantumCircuit(n)
    for name, qubits, params in reversed(rev_gates):
        circuit.add(name, qubits, params)
    return circuit


# -- preprocessing -------------------------------------------------------------


def _insert_boundary_dummies(graph: ZXGraph) -> None:
    """Give every boundary its own adjacent spider, H-connected inward.

    After this pass every input/output connects to a dedicated phase-0
    spider via a plain or Hadamard wire, and all spider-spider edges are
    Hadamard edges, so the biadjacency row operations of the main loop are
    always sound.
    """
    for boundary in list(graph.inputs) + list(graph.outputs):
        (neighbor,) = graph.neighbors(boundary)
        if graph.is_boundary(neighbor):
            continue  # bare wire input->output; handled by the main loop
        etype = graph.edge_type(boundary, neighbor)
        dummy = graph.add_vertex(
            VertexType.Z,
            qubit=graph.qubit_of.get(boundary, -1.0),
            row=graph.row_of.get(boundary, -1.0),
        )
        graph.remove_edge(boundary, neighbor)
        boundary_etype = (
            EdgeType.SIMPLE if etype == EdgeType.HADAMARD else EdgeType.HADAMARD
        )
        graph.add_edge(boundary, dummy, boundary_etype)
        graph.add_edge(dummy, neighbor, EdgeType.HADAMARD)


# -- main-loop helpers ---------------------------------------------------------


def _clean_frontier(
    graph: ZXGraph,
    qubit_of_output: Dict[int, int],
    done: Set[int],
    rev_gates: List[Tuple],
) -> None:
    """Peel everything local off the output side.

    Hadamard edges at outputs become H gates, frontier phases become rz
    gates, Hadamard edges between frontier spiders become CZ gates, and
    wires that reach an input are finished (possibly emitting a final H).
    """
    for output, q in qubit_of_output.items():
        if output in done:
            continue
        (v,) = graph.neighbors(output)
        if graph.is_boundary(v):
            # direct input-output wire
            if graph.edge_type(output, v) == EdgeType.HADAMARD:
                rev_gates.append(("h", [q], []))
                graph.set_edge_type(output, v, EdgeType.SIMPLE)
            done.add(output)
            continue
        if graph.edge_type(output, v) == EdgeType.HADAMARD:
            rev_gates.append(("h", [q], []))
            graph.set_edge_type(output, v, EdgeType.SIMPLE)
        phase = graph.phase(v) % 2.0
        if PHASE_TOL < phase < 2.0 - PHASE_TOL:
            rev_gates.append(("rz", [q], [phase * math.pi]))
            graph.set_phase(v, 0.0)
        # finished wire: the frontier spider only links output and input
        neighbors = graph.neighbors(v)
        input_neighbors = [w for w in neighbors if graph.is_boundary(w) and w != output]
        if input_neighbors and graph.degree(v) == 2:
            (b,) = input_neighbors
            etype = graph.edge_type(v, b)
            graph.remove_vertex(v)
            if etype == EdgeType.HADAMARD:
                rev_gates.append(("h", [q], []))
            graph.add_edge(output, b, EdgeType.SIMPLE)
            done.add(output)

    # CZ gates between frontier spiders
    frontier_vertex: Dict[int, int] = {}
    for output, q in qubit_of_output.items():
        if output in done:
            continue
        (v,) = graph.neighbors(output)
        frontier_vertex[v] = q
    for v, q in list(frontier_vertex.items()):
        for w in graph.neighbors(v):
            if w in frontier_vertex and frontier_vertex[w] > q:
                if graph.edge_type(v, w) != EdgeType.HADAMARD:  # pragma: no cover
                    raise ZXError("unexpected plain edge between frontier spiders")
                rev_gates.append(("cz", [q, frontier_vertex[w]], []))
                graph.remove_edge(v, w)


def _current_frontier(
    graph: ZXGraph, qubit_of_output: Dict[int, int], done: Set[int]
) -> List[Tuple[int, int]]:
    """(qubit, frontier-vertex) pairs for unfinished wires."""
    frontier = []
    for output, q in qubit_of_output.items():
        if output in done:
            continue
        (v,) = graph.neighbors(output)
        frontier.append((q, v))
    frontier.sort()
    return frontier


def _advance_frontier(
    graph: ZXGraph,
    frontier: List[Tuple[int, int]],
    rev_gates: List[Tuple],
    blocksize: int,
) -> bool:
    """One round of Gaussian elimination + frontier advancing.

    Returns True when at least one frontier vertex moved inward.
    """
    frontier_vertices = [v for _, v in frontier]
    frontier_qubits = [q for q, _ in frontier]
    neighbor_set: Set[int] = set()
    for v in frontier_vertices:
        for w in graph.neighbors(v):
            if not graph.is_boundary(w):
                neighbor_set.add(w)
    neighbors = sorted(neighbor_set)
    if not neighbors:
        # every remaining frontier vertex touches only boundaries; the
        # clean pass will finish these wires on the next iteration
        return True
    column_of = {w: j for j, w in enumerate(neighbors)}

    matrix = GF2Matrix.zeros(len(frontier_vertices), len(neighbors))
    for i, v in enumerate(frontier_vertices):
        for w in graph.neighbors(v):
            if w in column_of:
                matrix.data[i, column_of[w]] = 1

    row_ops: List[Tuple[int, int]] = []
    matrix.gauss(
        full_reduce=True,
        row_op_callback=lambda src, dst: row_ops.append((src, dst)),
        blocksize=blocksize,
    )

    # Mirror the row operations on the diagram and emit the CNOTs.  Row
    # operation "dst ^= src" corresponds to gluing CNOT(control=dst-wire,
    # target=src-wire) onto the output side of the diagram: the Hadamard
    # edges of the web transpose the usual CNOT row-action, so the *column*
    # picture applies (verified by the unitary-equality property tests).
    for src, dst in row_ops:
        v_src = frontier_vertices[src]
        v_dst = frontier_vertices[dst]
        rev_gates.append(("cx", [frontier_qubits[dst], frontier_qubits[src]], []))
        for w in graph.neighbors(v_src):
            if graph.is_boundary(w):
                continue
            if graph.has_edge(v_dst, w):
                graph.remove_edge(v_dst, w)
            else:
                graph.add_edge(v_dst, w, EdgeType.HADAMARD)

    advanced = False
    for i, v in enumerate(frontier_vertices):
        row = matrix.data[i]
        ones = np.nonzero(row)[0]
        if len(ones) != 1:
            continue
        w = neighbors[int(ones[0])]
        if graph.has_edge(v, w) is False:  # pragma: no cover - consistency
            raise ZXError("matrix and diagram out of sync during extraction")
        # v is now a plain Hadamard box between the output and w
        q = frontier_qubits[i]
        output = [o for o in graph.neighbors(v) if graph.is_boundary(o)]
        extra = [
            o for o in output if graph.edge_type(v, o) != EdgeType.SIMPLE
        ]
        if len(output) != 1 or extra:  # pragma: no cover - consistency
            raise ZXError("frontier vertex in unexpected state")
        rev_gates.append(("h", [q], []))
        graph.remove_vertex(v)
        graph.add_edge(output[0], w, EdgeType.SIMPLE)
        advanced = True
    return advanced


def _finalize_permutation(graph: ZXGraph, rev_gates: List[Tuple]) -> None:
    """Emit SWAPs for the residual wire permutation."""
    input_index = {b: j for j, b in enumerate(graph.inputs)}
    perm: List[int] = []
    for output in graph.outputs:
        (b,) = graph.neighbors(output)
        if not graph.is_boundary(b):  # pragma: no cover - loop invariant
            raise ZXError("extraction finished with spiders left on a wire")
        perm.append(input_index[b])
    current = list(range(len(perm)))
    swaps: List[Tuple[int, int]] = []
    for q in range(len(perm)):
        if current[q] == perm[q]:
            continue
        r = current.index(perm[q])
        swaps.append((q, r))
        current[q], current[r] = current[r], current[q]
    # the permutation is the earliest part of the circuit: emitted last in
    # reverse order so that reversal plays the swaps in the right sequence
    for q, r in reversed(swaps):
        rev_gates.append(("swap", [q, r], []))

"""ZX-calculus engine: diagrams, rewriting, extraction, optimization.

The top-level helper :func:`optimize_circuit` runs the paper's Section 3.1
pass: circuit -> ZX-diagram -> ``full_reduce`` -> extraction -> peephole
cleanup, keeping the original circuit when the rewrite does not help.
"""

from repro.zx.graph import ZXGraph, VertexType, EdgeType
from repro.zx.conversion import circuit_to_zx
from repro.zx.simplify import (
    full_reduce,
    interior_clifford_simp,
    spider_simp,
    id_simp,
    to_graph_like,
    lcomp_simp,
    pivot_simp,
)
from repro.zx.extract import extract_circuit
from repro.zx.optimize import optimize_circuit, ZXOptimizationResult
from repro.zx.peephole import basic_optimization
from repro.zx.analysis import t_count, non_clifford_spiders, circuit_metrics

__all__ = [
    "ZXGraph",
    "VertexType",
    "EdgeType",
    "circuit_to_zx",
    "full_reduce",
    "interior_clifford_simp",
    "spider_simp",
    "id_simp",
    "to_graph_like",
    "lcomp_simp",
    "pivot_simp",
    "extract_circuit",
    "optimize_circuit",
    "ZXOptimizationResult",
    "basic_optimization",
    "t_count",
    "non_clifford_spiders",
    "circuit_metrics",
]

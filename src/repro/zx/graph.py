"""The ZX-diagram data structure.

A ZX-diagram is an undirected multigraph-with-merging: vertices are Z or X
spiders (or circuit boundaries), edges are plain wires or Hadamard wires.
Phases are stored in **units of pi** as floats; helper predicates classify
Pauli (multiple of pi) and proper-Clifford (odd multiple of pi/2) phases
with a small tolerance so that exact rewrite rules still fire after float
arithmetic.

Scalars are not tracked: every rewrite preserves the diagram's linear map
only up to a global (non-zero) scalar factor, which is exactly the
equivalence the EPOC pipeline needs (pulses are compared up to global
phase).
"""

from __future__ import annotations

from enum import IntEnum
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.exceptions import ZXError

__all__ = ["VertexType", "EdgeType", "ZXGraph", "PHASE_TOL"]

PHASE_TOL = 1e-9


class VertexType(IntEnum):
    """Kind of a ZX-diagram vertex."""

    BOUNDARY = 0
    Z = 1
    X = 2


class EdgeType(IntEnum):
    """Kind of a ZX-diagram wire."""

    SIMPLE = 1
    HADAMARD = 2


def _normalize_phase(phase: float) -> float:
    """Reduce a phase (units of pi) into ``[0, 2)`` and snap near-Clifford
    values to exact multiples of 1/2 to stop float drift."""
    phase = phase % 2.0
    snapped = round(phase * 2.0) / 2.0
    if abs(phase - snapped) < 1e-12:
        phase = snapped % 2.0
    return phase


class ZXGraph:
    """Mutable ZX-diagram with vertex phases and typed edges."""

    def __init__(self):
        self._adjacency: Dict[int, Dict[int, EdgeType]] = {}
        self._types: Dict[int, VertexType] = {}
        self._phases: Dict[int, float] = {}
        #: drawing/extraction hints: which qubit line and column a vertex
        #: originated from (floats; -1 when unknown).
        self.qubit_of: Dict[int, float] = {}
        self.row_of: Dict[int, float] = {}
        self.inputs: List[int] = []
        self.outputs: List[int] = []
        self._next_index = 0

    # -- vertices ----------------------------------------------------------

    def add_vertex(
        self,
        vtype: VertexType,
        phase: float = 0.0,
        qubit: float = -1.0,
        row: float = -1.0,
    ) -> int:
        """Add a vertex and return its index."""
        v = self._next_index
        self._next_index += 1
        self._adjacency[v] = {}
        self._types[v] = VertexType(vtype)
        self._phases[v] = _normalize_phase(phase)
        self.qubit_of[v] = qubit
        self.row_of[v] = row
        return v

    def remove_vertex(self, v: int) -> None:
        """Remove ``v`` and all incident edges."""
        for w in list(self._adjacency[v]):
            del self._adjacency[w][v]
        del self._adjacency[v]
        del self._types[v]
        del self._phases[v]
        del self.qubit_of[v]
        del self.row_of[v]
        if v in self.inputs:
            self.inputs.remove(v)
        if v in self.outputs:
            self.outputs.remove(v)

    def vertices(self) -> Iterator[int]:
        return iter(list(self._adjacency))

    def has_vertex(self, v: int) -> bool:
        return v in self._adjacency

    def num_vertices(self) -> int:
        return len(self._adjacency)

    def type(self, v: int) -> VertexType:
        return self._types[v]

    def set_type(self, v: int, vtype: VertexType) -> None:
        self._types[v] = VertexType(vtype)

    def phase(self, v: int) -> float:
        return self._phases[v]

    def set_phase(self, v: int, phase: float) -> None:
        self._phases[v] = _normalize_phase(phase)

    def add_phase(self, v: int, phase: float) -> None:
        self._phases[v] = _normalize_phase(self._phases[v] + phase)

    def is_pauli_phase(self, v: int) -> bool:
        """Phase is 0 or pi (units of pi: 0.0 or 1.0)."""
        p = self._phases[v] % 1.0
        return p < PHASE_TOL or p > 1.0 - PHASE_TOL

    def is_proper_clifford_phase(self, v: int) -> bool:
        """Phase is an odd multiple of pi/2 (units of pi: 0.5 or 1.5)."""
        p = self._phases[v] % 1.0
        return abs(p - 0.5) < PHASE_TOL

    def is_boundary(self, v: int) -> bool:
        return self._types[v] == VertexType.BOUNDARY

    def is_interior(self, v: int) -> bool:
        """Non-boundary vertex with no boundary neighbours."""
        if self.is_boundary(v):
            return False
        return all(not self.is_boundary(w) for w in self.neighbors(v))

    # -- edges --------------------------------------------------------------

    def add_edge(self, v: int, w: int, etype: EdgeType = EdgeType.SIMPLE) -> None:
        """Add an edge; raises when the edge already exists (use
        :meth:`add_edge_smart` to merge parallel edges by the ZX rules)."""
        if v == w:
            raise ZXError("use add_edge_smart for self-loops")
        if w in self._adjacency[v]:
            raise ZXError(f"edge {v}-{w} already exists")
        self._adjacency[v][w] = EdgeType(etype)
        self._adjacency[w][v] = EdgeType(etype)

    def add_edge_smart(self, v: int, w: int, etype: EdgeType) -> None:
        """Add an edge, resolving self-loops and parallel edges.

        Between same-coloured spiders: a plain self-loop vanishes, a
        Hadamard self-loop adds pi to the phase; parallel Hadamard edges
        cancel pairwise (Hopf), and a Hadamard edge parallel to a plain edge
        becomes a pi phase.  Between different-coloured spiders the rules
        are colour-dual.  Boundary vertices never merge edges.
        """
        etype = EdgeType(etype)
        if v == w:
            if etype == EdgeType.HADAMARD:
                self.add_phase(v, 1.0)
            return
        existing = self._adjacency[v].get(w)
        if existing is None:
            self._adjacency[v][w] = etype
            self._adjacency[w][v] = etype
            return
        tv, tw = self._types[v], self._types[w]
        if tv == VertexType.BOUNDARY or tw == VertexType.BOUNDARY:
            raise ZXError("parallel edge onto a boundary vertex")
        same_color = tv == tw
        pair = {existing, etype}
        if same_color:
            if pair == {EdgeType.SIMPLE}:
                # fusing along one edge makes the other a vanishing self-loop
                pass
            elif pair == {EdgeType.HADAMARD}:
                # Hopf: two H-edges between same-colour spiders cancel
                self._remove_edge(v, w)
            else:
                # plain + H: fuse along the plain edge, H self-loop adds pi
                self._set_edge(v, w, EdgeType.SIMPLE)
                self.add_phase(v, 1.0)
        else:
            if pair == {EdgeType.HADAMARD}:
                pass
            elif pair == {EdgeType.SIMPLE}:
                # Hopf in the colour-dual picture
                self._remove_edge(v, w)
            else:
                self._set_edge(v, w, EdgeType.HADAMARD)
                self.add_phase(v, 1.0)

    def _set_edge(self, v: int, w: int, etype: EdgeType) -> None:
        self._adjacency[v][w] = etype
        self._adjacency[w][v] = etype

    def _remove_edge(self, v: int, w: int) -> None:
        del self._adjacency[v][w]
        del self._adjacency[w][v]

    def remove_edge(self, v: int, w: int) -> None:
        if w not in self._adjacency[v]:
            raise ZXError(f"no edge {v}-{w}")
        self._remove_edge(v, w)

    def has_edge(self, v: int, w: int) -> bool:
        return w in self._adjacency.get(v, {})

    def edge_type(self, v: int, w: int) -> EdgeType:
        try:
            return self._adjacency[v][w]
        except KeyError:
            raise ZXError(f"no edge {v}-{w}") from None

    def set_edge_type(self, v: int, w: int, etype: EdgeType) -> None:
        if w not in self._adjacency[v]:
            raise ZXError(f"no edge {v}-{w}")
        self._set_edge(v, w, EdgeType(etype))

    def toggle_edge_type(self, v: int, w: int) -> None:
        current = self.edge_type(v, w)
        self._set_edge(
            v,
            w,
            EdgeType.SIMPLE if current == EdgeType.HADAMARD else EdgeType.HADAMARD,
        )

    def neighbors(self, v: int) -> List[int]:
        return list(self._adjacency[v])

    def degree(self, v: int) -> int:
        return len(self._adjacency[v])

    def edges(self) -> List[Tuple[int, int, EdgeType]]:
        out = []
        for v, nbrs in self._adjacency.items():
            for w, etype in nbrs.items():
                if v < w:
                    out.append((v, w, etype))
        return out

    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adjacency.values()) // 2

    # -- structure helpers ---------------------------------------------------

    def spiders(self) -> List[int]:
        """All non-boundary vertices."""
        return [v for v in self._adjacency if not self.is_boundary(v)]

    def copy(self) -> "ZXGraph":
        clone = ZXGraph()
        clone._adjacency = {v: dict(nbrs) for v, nbrs in self._adjacency.items()}
        clone._types = dict(self._types)
        clone._phases = dict(self._phases)
        clone.qubit_of = dict(self.qubit_of)
        clone.row_of = dict(self.row_of)
        clone.inputs = list(self.inputs)
        clone.outputs = list(self.outputs)
        clone._next_index = self._next_index
        return clone

    def stats(self) -> Dict[str, int]:
        """Summary used in logs and tests."""
        return {
            "vertices": self.num_vertices(),
            "edges": self.num_edges(),
            "z_spiders": sum(
                1 for v in self._adjacency if self._types[v] == VertexType.Z
            ),
            "x_spiders": sum(
                1 for v in self._adjacency if self._types[v] == VertexType.X
            ),
            "boundaries": sum(
                1 for v in self._adjacency if self._types[v] == VertexType.BOUNDARY
            ),
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"ZXGraph({s['vertices']} vertices, {s['edges']} edges, "
            f"{len(self.inputs)} in / {len(self.outputs)} out)"
        )

    # -- validation ------------------------------------------------------------

    def check_well_formed(self) -> None:
        """Raise :class:`ZXError` on structural inconsistencies."""
        for v, nbrs in self._adjacency.items():
            for w, etype in nbrs.items():
                if self._adjacency.get(w, {}).get(v) != etype:
                    raise ZXError(f"asymmetric edge {v}-{w}")
        for b in self.inputs + self.outputs:
            if b not in self._adjacency:
                raise ZXError(f"boundary vertex {b} missing")
            if self._types[b] != VertexType.BOUNDARY:
                raise ZXError(f"vertex {b} listed as boundary but is a spider")
            if self.degree(b) != 1:
                raise ZXError(f"boundary vertex {b} has degree {self.degree(b)}")

    def is_graph_like(self) -> bool:
        """True when every spider is Z and all spider-spider edges are
        Hadamard edges (boundary connections may be plain)."""
        for v in self._adjacency:
            if self.is_boundary(v):
                continue
            if self._types[v] != VertexType.Z:
                return False
            for w, etype in self._adjacency[v].items():
                if self.is_boundary(w):
                    continue
                if etype != EdgeType.HADAMARD:
                    return False
        return True

"""ZX-calculus rewrite rules (in-place, single application each).

Every rule preserves the diagram's linear map up to a global non-zero
scalar.  Rules raise :class:`ZXError` when preconditions fail, so the
drivers in :mod:`repro.zx.simplify` match first and apply second.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Set, Tuple

from repro.exceptions import ZXError
from repro.zx.graph import EdgeType, VertexType, ZXGraph, PHASE_TOL

__all__ = [
    "fuse_spiders",
    "remove_identity",
    "color_change",
    "local_complementation",
    "pivot",
    "insert_wire_spider",
]


def insert_wire_spider(graph: ZXGraph, spider: int, boundary: int) -> int:
    """Split the wire between ``spider`` and a boundary with a dummy spider.

    The new phase-0 Z-spider connects to ``spider`` by a Hadamard edge and
    to ``boundary`` by the complementary type, so the composite wire is
    unchanged.  Used to make a boundary-adjacent spider interior before a
    pivot (the *boundary pivot* of clifford_simp).
    """
    if not graph.is_boundary(boundary):
        raise ZXError(f"vertex {boundary} is not a boundary")
    etype = graph.edge_type(spider, boundary)
    dummy = graph.add_vertex(
        VertexType.Z,
        qubit=graph.qubit_of.get(boundary, -1.0),
        row=graph.row_of.get(boundary, -1.0),
    )
    graph.remove_edge(spider, boundary)
    graph.add_edge(spider, dummy, EdgeType.HADAMARD)
    graph.add_edge(
        dummy,
        boundary,
        EdgeType.SIMPLE if etype == EdgeType.HADAMARD else EdgeType.HADAMARD,
    )
    return dummy


def fuse_spiders(graph: ZXGraph, v: int, w: int) -> None:
    """Spider fusion: merge ``w`` into ``v``.

    Requires same colour and a plain connecting edge.  ``w``'s phase is
    added to ``v`` and its edges are transferred with parallel-edge
    resolution.
    """
    if graph.type(v) != graph.type(w) or graph.is_boundary(v):
        raise ZXError(f"cannot fuse vertices {v} and {w}: different types")
    if graph.edge_type(v, w) != EdgeType.SIMPLE:
        raise ZXError(f"cannot fuse across a Hadamard edge {v}-{w}")
    graph.remove_edge(v, w)
    graph.add_phase(v, graph.phase(w))
    for u in graph.neighbors(w):
        etype = graph.edge_type(w, u)
        graph.remove_edge(w, u)
        graph.add_edge_smart(v, u, etype)
    if w in graph.inputs or w in graph.outputs:  # pragma: no cover - guarded
        raise ZXError("attempted to fuse a boundary vertex")
    graph.remove_vertex(w)


def remove_identity(graph: ZXGraph, v: int) -> None:
    """Identity removal: a phase-0 spider with exactly two wires vanishes.

    The two wires are joined; two equal edge types give a plain wire, a
    mixed pair gives a Hadamard wire.
    """
    if graph.is_boundary(v):
        raise ZXError(f"vertex {v} is a boundary")
    if graph.phase(v) % 2.0 > PHASE_TOL and graph.phase(v) % 2.0 < 2.0 - PHASE_TOL:
        raise ZXError(f"vertex {v} has non-zero phase")
    neighbors = graph.neighbors(v)
    if graph.degree(v) != 2 or len(neighbors) != 2:
        raise ZXError(f"vertex {v} does not have exactly two distinct wires")
    n1, n2 = neighbors
    e1 = graph.edge_type(v, n1)
    e2 = graph.edge_type(v, n2)
    etype = EdgeType.SIMPLE if e1 == e2 else EdgeType.HADAMARD
    graph.remove_vertex(v)
    if graph.type(n1) == VertexType.BOUNDARY and graph.type(n2) == VertexType.BOUNDARY:
        # wire straight from one boundary to another
        graph.add_edge(n1, n2, etype)
    else:
        if graph.type(n1) == VertexType.BOUNDARY:
            n1, n2 = n2, n1  # make n1 the spider for add_edge_smart
        graph.add_edge_smart(n1, n2, etype)


def color_change(graph: ZXGraph, v: int) -> None:
    """Toggle a spider's colour by pushing Hadamards onto all its legs."""
    vtype = graph.type(v)
    if vtype == VertexType.BOUNDARY:
        raise ZXError("cannot colour-change a boundary vertex")
    graph.set_type(v, VertexType.X if vtype == VertexType.Z else VertexType.Z)
    for w in graph.neighbors(v):
        graph.toggle_edge_type(v, w)


def _toggle_hadamard_edges(graph: ZXGraph, pairs) -> None:
    """Toggle the existence of a Hadamard edge for each vertex pair."""
    for a, b in pairs:
        if a == b:
            continue
        if graph.has_edge(a, b):
            # graph-like: the edge must be a Hadamard edge; toggling removes it
            if graph.edge_type(a, b) != EdgeType.HADAMARD:
                raise ZXError("complementation on a non-Hadamard edge")
            graph.remove_edge(a, b)
        else:
            graph.add_edge(a, b, EdgeType.HADAMARD)


def local_complementation(graph: ZXGraph, v: int) -> None:
    """Remove an interior ±pi/2 spider by local complementation.

    Preconditions (graph-like form): ``v`` is an interior Z-spider with
    phase ±pi/2 whose every edge is a Hadamard edge.  The neighbourhood of
    ``v`` is complemented and each neighbour's phase decreases by ``v``'s
    phase.
    """
    if graph.type(v) != VertexType.Z:
        raise ZXError(f"vertex {v} is not a Z-spider")
    if not graph.is_proper_clifford_phase(v):
        raise ZXError(f"vertex {v} phase {graph.phase(v)} is not ±pi/2")
    if not graph.is_interior(v):
        raise ZXError(f"vertex {v} touches the boundary")
    neighbors = graph.neighbors(v)
    for w in neighbors:
        if graph.edge_type(v, w) != EdgeType.HADAMARD:
            raise ZXError("local complementation requires Hadamard edges")
        if graph.type(w) != VertexType.Z:
            raise ZXError("local complementation requires Z-spider neighbours")
    phase = graph.phase(v)  # 0.5 or 1.5 in units of pi
    graph.remove_vertex(v)
    _toggle_hadamard_edges(graph, combinations(neighbors, 2))
    for w in neighbors:
        graph.add_phase(w, -phase)


def pivot(graph: ZXGraph, u: int, v: int) -> None:
    """Remove an adjacent pair of interior Pauli spiders by pivoting.

    Preconditions (graph-like form): ``u`` and ``v`` are interior Z-spiders
    joined by a Hadamard edge and both phases are 0 or pi.  The edges
    between the three neighbourhood classes (only-``u``, only-``v``,
    common) are complemented; common neighbours pick up an extra pi.
    """
    for vertex in (u, v):
        if graph.type(vertex) != VertexType.Z:
            raise ZXError(f"vertex {vertex} is not a Z-spider")
        if not graph.is_pauli_phase(vertex):
            raise ZXError(f"vertex {vertex} phase is not a Pauli phase")
        if not graph.is_interior(vertex):
            raise ZXError(f"vertex {vertex} touches the boundary")
    if not graph.has_edge(u, v) or graph.edge_type(u, v) != EdgeType.HADAMARD:
        raise ZXError("pivot requires a Hadamard edge between the pair")

    neighbors_u: Set[int] = set(graph.neighbors(u)) - {v}
    neighbors_v: Set[int] = set(graph.neighbors(v)) - {u}
    for w in neighbors_u | neighbors_v:
        if graph.type(w) != VertexType.Z:
            raise ZXError("pivot neighbourhood must be Z-spiders")
    common = neighbors_u & neighbors_v
    only_u = neighbors_u - common
    only_v = neighbors_v - common

    phase_u = graph.phase(u)
    phase_v = graph.phase(v)
    graph.remove_vertex(u)
    graph.remove_vertex(v)

    pairs: List[Tuple[int, int]] = []
    pairs.extend((a, b) for a in only_u for b in only_v)
    pairs.extend((a, c) for a in only_u for c in common)
    pairs.extend((b, c) for b in only_v for c in common)
    _toggle_hadamard_edges(graph, pairs)

    for w in only_u:
        graph.add_phase(w, phase_v)
    for w in only_v:
        graph.add_phase(w, phase_u)
    for w in common:
        graph.add_phase(w, phase_u + phase_v + 1.0)

"""Circuit-level gate commutation and aggregation.

This is the gate-commutation/aggregation pass the paper describes in
Section 3.1 (delay gates past commuting neighbours, cancel inverse pairs,
fuse rotations, rewrite H-conjugated phases).  It is used both standalone
and as the post-extraction cleanup of the ZX pipeline.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate

__all__ = ["basic_optimization", "cancel_and_fuse_pass", "hadamard_conjugation_pass"]

_TWO_PI = 2.0 * math.pi
_EPS = 1e-10

#: gates that equal their own inverse and cancel pairwise
_SELF_INVERSE = {"h", "x", "y", "z", "cx", "cz", "swap", "ccx", "ccz", "cswap"}

#: rotation families that fuse by angle addition
_ROTATION_AXES = {"rz": "z", "rx": "x", "p": "z", "rzz": "zz"}

#: fixed-phase gates absorbed into rz fusion, with their angle
_Z_PHASE_ANGLE = {
    "z": math.pi,
    "s": math.pi / 2.0,
    "sdg": -math.pi / 2.0,
    "t": math.pi / 4.0,
    "tdg": -math.pi / 4.0,
}


def _z_diagonal_qubits(gate: Gate) -> Set[int]:
    """Qubits on which the gate acts diagonally in the Z basis."""
    name = gate.name
    if name in ("rz", "p", "z", "s", "sdg", "t", "tdg", "u1"):
        return set(gate.qubits)
    if name in ("cz", "cp", "cu1", "rzz", "ccz"):
        return set(gate.qubits)
    if name == "cx":
        return {gate.qubits[0]}
    if name == "ccx":
        return {gate.qubits[0], gate.qubits[1]}
    return set()


def _x_diagonal_qubits(gate: Gate) -> Set[int]:
    """Qubits on which the gate acts diagonally in the X basis."""
    name = gate.name
    if name in ("rx", "x", "sx", "sxdg"):
        return set(gate.qubits)
    if name == "rxx":
        return set(gate.qubits)
    if name == "cx":
        return {gate.qubits[1]}
    if name == "ccx":
        return {gate.qubits[2]}
    return set()


def _commute(a: Gate, b: Gate) -> bool:
    """Sound (not complete) commutation test for gates sharing qubits."""
    shared = set(a.qubits) & set(b.qubits)
    if not shared:
        return True
    az, ax = _z_diagonal_qubits(a), _x_diagonal_qubits(a)
    bz, bx = _z_diagonal_qubits(b), _x_diagonal_qubits(b)
    return all((q in az and q in bz) or (q in ax and q in bx) for q in shared)


def _as_rotation(gate: Gate) -> Optional[Tuple[str, float]]:
    """Normalize to ('rz'|'rx'|'rzz', angle) when the gate is a rotation."""
    if gate.name in ("rz", "rx", "rzz"):
        return gate.name, gate.params[0]
    if gate.name in ("p", "u1"):
        return "rz", gate.params[0]
    if gate.name in _Z_PHASE_ANGLE:
        return "rz", _Z_PHASE_ANGLE[gate.name]
    return None


def _fuse(existing: Gate, incoming: Gate) -> Optional[Optional[Gate]]:
    """Try to fuse ``incoming`` into ``existing``.

    Returns ``None`` when not fusable; otherwise the fused replacement gate
    or ``...`` -- we encode "both gates vanish" as the sentinel ``_CANCEL``.
    """
    if existing.qubits != incoming.qubits:
        if set(existing.qubits) == set(incoming.qubits) and existing.name in (
            "cz",
            "rzz",
            "swap",
        ):
            pass  # symmetric gates match regardless of operand order
        else:
            return None
    if (
        existing.name == incoming.name
        and existing.name in _SELF_INVERSE
        and not existing.params
    ):
        return _CANCEL
    rot_a = _as_rotation(existing)
    rot_b = _as_rotation(incoming)
    if rot_a and rot_b and rot_a[0] == rot_b[0]:
        angle = (rot_a[1] + rot_b[1]) % _TWO_PI
        if angle < _EPS or _TWO_PI - angle < _EPS:
            return _CANCEL
        return Gate(rot_a[0], existing.qubits, (angle,))
    return None


class _Cancel:
    """Sentinel: both gates annihilate."""


_CANCEL = _Cancel()


def cancel_and_fuse_pass(circuit: QuantumCircuit) -> QuantumCircuit:
    """One pass of commute-left + cancel/fuse; returns a new circuit."""
    out: List[Optional[Gate]] = []
    touching: Dict[int, List[int]] = {q: [] for q in range(circuit.num_qubits)}

    for gate in circuit.gates:
        if not gate.is_unitary_op:
            # pseudo-ops block everything on their qubits
            index = len(out)
            out.append(gate)
            for q in gate.qubits:
                touching[q].append(index)
            continue
        rotation = _as_rotation(gate)
        if rotation and abs(rotation[1] % _TWO_PI) < _EPS:
            continue  # identity rotation
        if gate.name == "id":
            continue
        candidate_indices = sorted(
            {i for q in gate.qubits for i in touching[q]}, reverse=True
        )
        merged = False
        for i in candidate_indices:
            other = out[i]
            if other is None:
                continue
            fused = _fuse(other, gate)
            if fused is _CANCEL:
                out[i] = None
                merged = True
                break
            if isinstance(fused, Gate):
                out[i] = fused
                merged = True
                break
            if other.is_unitary_op and _commute(other, gate):
                continue
            break
        if not merged:
            index = len(out)
            out.append(gate)
            for q in gate.qubits:
                touching[q].append(index)

    result = QuantumCircuit(circuit.num_qubits)
    for gate in out:
        if gate is not None:
            result.append(gate)
    return result


def hadamard_conjugation_pass(circuit: QuantumCircuit) -> QuantumCircuit:
    """Rewrite ``H . rot . H`` sandwiches: rz <-> rx basis flips.

    Works on per-qubit adjacency: the three gates must be consecutive on
    the qubit's own wire, which is exactly when the rewrite is sound for
    single-qubit gates.
    """
    gates = list(circuit.gates)
    wire: Dict[int, List[int]] = {q: [] for q in range(circuit.num_qubits)}
    for index, gate in enumerate(gates):
        for q in gate.qubits:
            wire[q].append(index)

    removed: Set[int] = set()
    replaced: Dict[int, Gate] = {}
    for q in range(circuit.num_qubits):
        seq = wire[q]
        for k in range(len(seq) - 2):
            i, j, l = seq[k], seq[k + 1], seq[k + 2]
            if i in removed or j in removed or l in removed:
                continue
            gi = replaced.get(i, gates[i])
            gj = replaced.get(j, gates[j])
            gl = replaced.get(l, gates[l])
            if gi.name != "h" or gl.name != "h":
                continue
            if gj.num_qubits != 1 or gj.qubits != (q,):
                continue
            rotation = _as_rotation(gj)
            if rotation is None or rotation[0] not in ("rz", "rx"):
                continue
            new_name = "rx" if rotation[0] == "rz" else "rz"
            removed.add(i)
            removed.add(l)
            replaced[j] = Gate(new_name, (q,), (rotation[1],))

    result = QuantumCircuit(circuit.num_qubits)
    for index, gate in enumerate(gates):
        if index in removed:
            continue
        result.append(replaced.get(index, gate))
    return result


def basic_optimization(
    circuit: QuantumCircuit, max_rounds: int = 20
) -> QuantumCircuit:
    """Fixpoint of cancel/fuse + Hadamard-conjugation passes."""
    current = circuit
    for _ in range(max_rounds):
        candidate = cancel_and_fuse_pass(current)
        candidate = hadamard_conjugation_pass(candidate)
        if len(candidate) == len(current) and candidate.depth() == current.depth():
            return candidate
        current = candidate
    return current

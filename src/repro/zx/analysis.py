"""Circuit and diagram analysis metrics: T-count, Clifford fraction.

ZX-based optimizers are classically benchmarked by their non-Clifford
(T-gate) resource counts (Kissinger & van de Wetering 2019, cited in the
paper's related work).  These helpers quantify that resource for both
circuits and ZX-diagrams, and are used by tests to check that
simplification never *increases* the non-Clifford content.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.circuits.circuit import QuantumCircuit
from repro.zx.graph import PHASE_TOL, ZXGraph

__all__ = ["t_count", "non_clifford_spiders", "circuit_metrics"]

_CLIFFORD_GATES = {
    "id",
    "x",
    "y",
    "z",
    "h",
    "s",
    "sdg",
    "sx",
    "sxdg",
    "cx",
    "cy",
    "cz",
    "swap",
    "iswap",
}
_T_LIKE = {"t", "tdg"}


def _is_clifford_angle(angle: float, tol: float = 1e-9) -> bool:
    """True when ``angle`` is a multiple of pi/2."""
    ratio = angle / (math.pi / 2.0)
    return abs(ratio - round(ratio)) < tol


def t_count(circuit: QuantumCircuit) -> int:
    """Number of non-Clifford operations in the circuit.

    T/Tdg count 1 each; parameterized rotations count 1 unless their
    angle is a Clifford multiple of pi/2; raw unitaries are counted
    conservatively as non-Clifford.
    """
    count = 0
    for gate in circuit.unitary_gates():
        if gate.name in _CLIFFORD_GATES:
            continue
        if gate.name in _T_LIKE:
            count += 1
        elif gate.params:
            if not all(_is_clifford_angle(p) for p in gate.params):
                count += 1
        else:
            count += 1
    return count


def non_clifford_spiders(graph: ZXGraph) -> int:
    """Number of spiders with a non-Clifford phase."""
    count = 0
    for v in graph.spiders():
        phase = graph.phase(v) % 0.5  # units of pi; Clifford = multiple of 1/2
        if PHASE_TOL < phase < 0.5 - PHASE_TOL:
            count += 1
    return count


def circuit_metrics(circuit: QuantumCircuit) -> Dict[str, int]:
    """Summary resource metrics used in reports and tests."""
    return {
        "gates": len(circuit.unitary_gates()),
        "depth": circuit.depth(),
        "two_qubit": circuit.two_qubit_count,
        "t_count": t_count(circuit),
    }

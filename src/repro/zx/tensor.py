"""Brute-force semantic evaluation of small ZX-diagrams.

This is a *test oracle*: it computes the linear map of a diagram by
summing over all basis assignments of the spiders, which is exponential in
the spider count and guarded accordingly.  Production code never calls it;
tests use it to certify that rewrite rules preserve semantics up to a
global scalar.
"""

from __future__ import annotations

import itertools
from typing import Dict, List

import numpy as np

from repro.exceptions import ZXError
from repro.zx.graph import EdgeType, VertexType, ZXGraph

__all__ = ["zx_to_matrix"]

_MAX_SPIDERS = 20


def zx_to_matrix(graph: ZXGraph) -> np.ndarray:
    """The ``2**|out| x 2**|in|`` matrix of ``graph`` (up to global scalar).

    Works by first colour-changing every X spider to Z (toggling its edge
    types), then summing over computational-basis assignments: a Z spider
    with phase ``a`` (units of pi) and value ``x`` contributes
    ``e^{i*pi*a*x}``, a plain edge enforces equality, and a Hadamard edge
    contributes ``(-1)^{xy}`` (unnormalized H).
    """
    work = graph.copy()
    for v in list(work.vertices()):
        if work.type(v) == VertexType.X:
            work.set_type(v, VertexType.Z)
            for w in work.neighbors(v):
                work.toggle_edge_type(v, w)

    spiders = [v for v in work.vertices() if not work.is_boundary(v)]
    if len(spiders) > _MAX_SPIDERS:
        raise ZXError(
            f"diagram has {len(spiders)} spiders; zx_to_matrix is a test "
            f"oracle limited to {_MAX_SPIDERS}"
        )
    inputs = list(work.inputs)
    outputs = list(work.outputs)
    n_in, n_out = len(inputs), len(outputs)
    matrix = np.zeros((2**n_out, 2**n_in), dtype=complex)

    edges = work.edges()
    phases = {v: work.phase(v) for v in spiders}

    for in_bits in itertools.product((0, 1), repeat=n_in):
        for out_bits in itertools.product((0, 1), repeat=n_out):
            assignment: Dict[int, int] = {}
            for b, bit in zip(inputs, in_bits):
                assignment[b] = bit
            for b, bit in zip(outputs, out_bits):
                assignment[b] = bit
            total = 0.0 + 0.0j
            for spider_bits in itertools.product((0, 1), repeat=len(spiders)):
                for v, bit in zip(spiders, spider_bits):
                    assignment[v] = bit
                amplitude = 1.0 + 0.0j
                for v, bit in zip(spiders, spider_bits):
                    if bit:
                        amplitude *= np.exp(1j * np.pi * phases[v])
                for v, w, etype in edges:
                    xv, xw = assignment[v], assignment[w]
                    if etype == EdgeType.SIMPLE:
                        if xv != xw:
                            amplitude = 0.0
                            break
                    else:
                        if xv and xw:
                            amplitude = -amplitude
                if amplitude != 0.0:
                    total += amplitude
            row = int("".join(str(b) for b in out_bits), 2) if n_out else 0
            col = int("".join(str(b) for b in in_bits), 2) if n_in else 0
            matrix[row, col] = total
    return matrix

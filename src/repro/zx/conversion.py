"""Conversion between circuits and ZX-diagrams."""

from __future__ import annotations

import math
from typing import Dict, List

from repro.exceptions import ZXError
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.transpile import decompose_to_zx_basis
from repro.zx.graph import EdgeType, VertexType, ZXGraph

__all__ = ["circuit_to_zx", "zx_to_circuit_naive"]


def circuit_to_zx(circuit: QuantumCircuit) -> ZXGraph:
    """Convert a circuit to a ZX-diagram.

    The circuit is first rewritten into the {rz, rx, h, cx, cz} basis; each
    rz becomes a Z-spider, each rx an X-spider, each h toggles the pending
    edge type on its wire, cx becomes the usual Z-X pair and cz a
    Hadamard-edge Z-Z pair.
    """
    basis = decompose_to_zx_basis(circuit)
    graph = ZXGraph()
    n = circuit.num_qubits
    last: List[int] = []
    pending_hadamard = [False] * n
    for q in range(n):
        v = graph.add_vertex(VertexType.BOUNDARY, qubit=q, row=0)
        graph.inputs.append(v)
        last.append(v)

    row = 1.0

    def connect(q: int, new_vertex: int) -> None:
        etype = EdgeType.HADAMARD if pending_hadamard[q] else EdgeType.SIMPLE
        graph.add_edge(last[q], new_vertex, etype)
        pending_hadamard[q] = False
        last[q] = new_vertex

    for gate in basis.gates:
        if gate.name == "h":
            q = gate.qubits[0]
            pending_hadamard[q] = not pending_hadamard[q]
            continue
        if gate.name == "rz":
            q = gate.qubits[0]
            v = graph.add_vertex(
                VertexType.Z, phase=gate.params[0] / math.pi, qubit=q, row=row
            )
            connect(q, v)
        elif gate.name == "rx":
            q = gate.qubits[0]
            v = graph.add_vertex(
                VertexType.X, phase=gate.params[0] / math.pi, qubit=q, row=row
            )
            connect(q, v)
        elif gate.name == "cx":
            c, t = gate.qubits
            vc = graph.add_vertex(VertexType.Z, qubit=c, row=row)
            vt = graph.add_vertex(VertexType.X, qubit=t, row=row)
            connect(c, vc)
            connect(t, vt)
            graph.add_edge(vc, vt, EdgeType.SIMPLE)
        elif gate.name == "cz":
            a, b = gate.qubits
            va = graph.add_vertex(VertexType.Z, qubit=a, row=row)
            vb = graph.add_vertex(VertexType.Z, qubit=b, row=row)
            connect(a, va)
            connect(b, vb)
            graph.add_edge(va, vb, EdgeType.HADAMARD)
        else:  # pragma: no cover - decompose_to_zx_basis only emits these
            raise ZXError(f"unexpected gate {gate.name!r} in ZX basis")
        row += 1.0

    for q in range(n):
        v = graph.add_vertex(VertexType.BOUNDARY, qubit=q, row=row)
        graph.outputs.append(v)
        connect(q, v)
    return graph


def zx_to_circuit_naive(graph: ZXGraph) -> QuantumCircuit:
    """Inverse of :func:`circuit_to_zx` for *unsimplified* diagrams.

    Only works when the diagram still has the ladder structure produced by
    :func:`circuit_to_zx` (each spider has known qubit/row hints and degree
    <= 3).  Simplified diagrams must go through
    :func:`repro.zx.extract.extract_circuit` instead.
    """
    from repro.zx.extract import extract_circuit

    return extract_circuit(graph.copy())

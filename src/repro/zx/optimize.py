"""Top-level ZX optimization pass (paper Section 3.1).

``optimize_circuit`` runs circuit -> ZX -> full_reduce -> extraction ->
peephole and returns whichever of {peephole-only, ZX-pipeline} circuit is
shallower, so the pass never makes a circuit worse — matching how the
paper reports depth *reductions* across its random-circuit suite (Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ZXError
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.transpile import decompose_to_zx_basis
from repro.zx.conversion import circuit_to_zx
from repro.zx.extract import extract_circuit
from repro.zx.peephole import basic_optimization
from repro.zx.simplify import full_reduce

__all__ = ["optimize_circuit", "ZXOptimizationResult"]


@dataclass(frozen=True)
class ZXOptimizationResult:
    """Outcome of the ZX optimization pass."""

    circuit: QuantumCircuit
    depth_before: int
    depth_after: int
    rewrites: int
    used_zx_pipeline: bool

    @property
    def depth_reduction(self) -> float:
        """Multiplicative depth reduction (>= 1.0 means improvement)."""
        if self.depth_after == 0:
            return float(self.depth_before) if self.depth_before else 1.0
        return self.depth_before / self.depth_after


def optimize_circuit(circuit: QuantumCircuit) -> ZXOptimizationResult:
    """Depth-optimize a circuit with the ZX-calculus pipeline.

    The unitary of the returned circuit equals the input's up to global
    phase.  Pseudo-operations (measure/barrier) are dropped — the pass
    operates on the unitary portion, as in the paper's flow where
    measurement happens after pulse generation.
    """
    work = circuit.without_pseudo_ops()
    depth_before = work.depth()

    # route 1: plain commutation/aggregation on the gate list
    peephole_only = basic_optimization(decompose_to_zx_basis(work))

    # route 2: the full ZX pipeline
    rewrites = 0
    zx_candidate = None
    try:
        graph = circuit_to_zx(work)
        rewrites = full_reduce(graph)
        extracted = extract_circuit(graph)
        zx_candidate = basic_optimization(extracted)
    except ZXError:
        zx_candidate = None

    best = peephole_only
    used_zx = False
    if zx_candidate is not None:
        if (zx_candidate.depth(), len(zx_candidate)) < (best.depth(), len(best)):
            best = zx_candidate
            used_zx = True
    if (work.depth(), len(work)) <= (best.depth(), len(best)):
        best = work
        used_zx = False

    return ZXOptimizationResult(
        circuit=best,
        depth_before=depth_before,
        depth_after=best.depth(),
        rewrites=rewrites,
        used_zx_pipeline=used_zx,
    )

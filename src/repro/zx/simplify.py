"""Simplification drivers: worklist fixpoint loops over the rewrite rules.

The top-level entry point :func:`full_reduce` mirrors PyZX's pipeline of
the same name restricted to the gadget-free rule set: normalize to
graph-like form, then repeatedly fuse spiders, drop identities, and remove
interior Clifford spiders by local complementation and pivoting.  All of
these rules preserve the existence of a gflow, so the result is always
extractable by :mod:`repro.zx.extract`.

Each driver uses a worklist seeded with all current candidates; rule
applications push only the locally affected vertices/edges back, keeping
the passes near-linear so that circuits with tens of thousands of spiders
(the paper's deep-VQE case) remain tractable.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from repro import telemetry
from repro.zx.graph import EdgeType, VertexType, ZXGraph, PHASE_TOL
from repro.zx.rules import (
    color_change,
    fuse_spiders,
    insert_wire_spider,
    local_complementation,
    pivot,
    remove_identity,
)

__all__ = [
    "spider_simp",
    "id_simp",
    "to_graph_like",
    "lcomp_simp",
    "pivot_simp",
    "boundary_pivot_simp",
    "interior_clifford_simp",
    "clifford_simp",
    "full_reduce",
]


def _count_rewrites(rule: str, applied: int) -> int:
    """Feed the per-rule rewrite counters; passes ``applied`` through."""
    if applied:
        telemetry.get_metrics().inc(f"zx.rewrites.{rule}", applied)
    return applied


def _is_zero_phase(graph: ZXGraph, v: int) -> bool:
    phase = graph.phase(v) % 2.0
    return phase < PHASE_TOL or phase > 2.0 - PHASE_TOL


def spider_simp(graph: ZXGraph, seed: Iterable[Tuple[int, int]] = None) -> int:
    """Fuse all same-colour spiders joined by plain edges; returns count."""
    if seed is None:
        work: List[Tuple[int, int]] = [
            (v, w) for v, w, e in graph.edges() if e == EdgeType.SIMPLE
        ]
    else:
        work = list(seed)
    applied = 0
    while work:
        v, w = work.pop()
        if not graph.has_edge(v, w):
            continue
        if graph.edge_type(v, w) != EdgeType.SIMPLE:
            continue
        if graph.is_boundary(v) or graph.is_boundary(w):
            continue
        if graph.type(v) != graph.type(w):
            continue
        fuse_spiders(graph, v, w)
        applied += 1
        for u in graph.neighbors(v):
            if graph.edge_type(v, u) == EdgeType.SIMPLE:
                work.append((v, u))
    return _count_rewrites("spider", applied)


def _identity_candidate(graph: ZXGraph, v: int) -> bool:
    return (
        not graph.is_boundary(v)
        and _is_zero_phase(graph, v)
        and graph.degree(v) == 2
        and len(graph.neighbors(v)) == 2
    )


def id_simp(graph: ZXGraph, seed: Iterable[int] = None) -> int:
    """Remove all phase-0 arity-2 spiders; returns count."""
    work = list(seed) if seed is not None else list(graph.vertices())
    applied = 0
    while work:
        v = work.pop()
        if not graph.has_vertex(v) or not _identity_candidate(graph, v):
            continue
        neighbors = graph.neighbors(v)
        remove_identity(graph, v)
        applied += 1
        # joining the two wires may create new fusion or identity matches
        n1, n2 = neighbors
        if graph.has_vertex(n1) and graph.has_vertex(n2):
            if graph.has_edge(n1, n2) and graph.edge_type(n1, n2) == EdgeType.SIMPLE:
                spider_simp(graph, seed=[(n1, n2)])
        for u in neighbors:
            if graph.has_vertex(u):
                work.append(u)
    return _count_rewrites("id", applied)


def to_graph_like(graph: ZXGraph) -> None:
    """Normalize: all spiders Z, spider-spider edges Hadamard.

    X spiders are colour-changed to Z; plain edges between Z spiders are
    removed by fusion.  Boundary wires keep whatever edge type they have —
    extraction handles Hadamard edges at the boundary.
    """
    for v in list(graph.vertices()):
        if not graph.is_boundary(v) and graph.type(v) == VertexType.X:
            color_change(graph, v)
    spider_simp(graph)
    id_simp(graph)


def _lcomp_candidate(graph: ZXGraph, v: int) -> bool:
    if graph.is_boundary(v) or graph.type(v) != VertexType.Z:
        return False
    if not graph.is_proper_clifford_phase(v):
        return False
    if not graph.is_interior(v):
        return False
    return all(
        graph.edge_type(v, w) == EdgeType.HADAMARD
        and graph.type(w) == VertexType.Z
        for w in graph.neighbors(v)
    )


def lcomp_simp(graph: ZXGraph, seed: Iterable[int] = None) -> int:
    """Apply local complementation wherever it fires; returns count."""
    work = list(seed) if seed is not None else list(graph.vertices())
    applied = 0
    while work:
        v = work.pop()
        if not graph.has_vertex(v) or not _lcomp_candidate(graph, v):
            continue
        neighbors = graph.neighbors(v)
        local_complementation(graph, v)
        applied += 1
        work.extend(neighbors)
    return _count_rewrites("lcomp", applied)


def _pivot_candidate(graph: ZXGraph, u: int, v: int) -> bool:
    if not graph.has_edge(u, v) or graph.edge_type(u, v) != EdgeType.HADAMARD:
        return False
    for vertex in (u, v):
        if graph.is_boundary(vertex) or graph.type(vertex) != VertexType.Z:
            return False
        if not graph.is_pauli_phase(vertex):
            return False
        if not graph.is_interior(vertex):
            return False
    neighborhood = (set(graph.neighbors(u)) | set(graph.neighbors(v))) - {u, v}
    return all(graph.type(w) == VertexType.Z for w in neighborhood)


def pivot_simp(graph: ZXGraph, seed: Iterable[Tuple[int, int]] = None) -> int:
    """Apply pivoting wherever it fires; returns count."""
    if seed is None:
        work: List[Tuple[int, int]] = [
            (u, v) for u, v, e in graph.edges() if e == EdgeType.HADAMARD
        ]
    else:
        work = list(seed)
    applied = 0
    while work:
        u, v = work.pop()
        if not (graph.has_vertex(u) and graph.has_vertex(v)):
            continue
        if not _pivot_candidate(graph, u, v):
            continue
        neighborhood = (set(graph.neighbors(u)) | set(graph.neighbors(v))) - {u, v}
        pivot(graph, u, v)
        applied += 1
        for w in neighborhood:
            if not graph.has_vertex(w):
                continue
            for x in graph.neighbors(w):
                work.append((w, x))
    return _count_rewrites("pivot", applied)


def boundary_pivot_simp(graph: ZXGraph) -> int:
    """Boundary pivots: remove interior/boundary Pauli pairs.

    When an interior Pauli spider ``u`` is H-adjacent to a Pauli spider
    ``v`` that touches the boundary, splitting ``v``'s boundary wires with
    dummy spiders makes the pair pivotable.  Net spider count drops
    whenever ``v`` touches a single boundary; we only fire in that case so
    the pass strictly simplifies.
    """
    applied = 0
    changed = True
    while changed:
        changed = False
        for u, v, etype in graph.edges():
            if etype != EdgeType.HADAMARD:
                continue
            if graph.is_boundary(u) or graph.is_boundary(v):
                continue
            if graph.type(u) != VertexType.Z or graph.type(v) != VertexType.Z:
                continue
            if not (graph.is_pauli_phase(u) and graph.is_pauli_phase(v)):
                continue
            # orient: u interior, v touching exactly one boundary
            if not graph.is_interior(u):
                u, v = v, u
            if not graph.is_interior(u) or graph.is_interior(v):
                continue
            boundaries = [w for w in graph.neighbors(v) if graph.is_boundary(w)]
            if len(boundaries) != 1:
                continue
            neighborhood = (set(graph.neighbors(u)) | set(graph.neighbors(v))) - {
                u,
                v,
            }
            if any(
                not graph.is_boundary(w) and graph.type(w) != VertexType.Z
                for w in neighborhood
            ):
                continue
            insert_wire_spider(graph, v, boundaries[0])
            if not _pivot_candidate(graph, u, v):  # pragma: no cover - safety
                continue
            pivot(graph, u, v)
            applied += 1
            changed = True
            break
    return _count_rewrites("boundary_pivot", applied)


def interior_clifford_simp(graph: ZXGraph) -> int:
    """Fixpoint of spider/id/lcomp/pivot simplification; returns count."""
    total = 0
    while True:
        applied = spider_simp(graph)
        applied += id_simp(graph)
        applied += lcomp_simp(graph)
        applied += pivot_simp(graph)
        total += applied
        if applied == 0:
            return total


def clifford_simp(graph: ZXGraph) -> int:
    """Interior Clifford simplification plus boundary pivots, to fixpoint."""
    total = 0
    while True:
        applied = interior_clifford_simp(graph)
        applied += boundary_pivot_simp(graph)
        total += applied
        if applied == 0:
            return total


def full_reduce(graph: ZXGraph, quiet: bool = True) -> int:
    """Normalize to graph-like form and simplify to a fixpoint.

    Returns the number of rule applications.  The input graph is modified
    in place; callers that need the original should pass ``graph.copy()``.
    """
    with telemetry.get_tracer().span("zx.full_reduce") as span:
        to_graph_like(graph)
        applied = clifford_simp(graph)
        span.set(rewrites=applied)
    if not quiet:  # pragma: no cover - debug aid
        print(f"full_reduce: {applied} rewrites, {graph!r}")
    return applied

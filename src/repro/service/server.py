"""`repro serve`: the resident compile daemon.

:class:`CompileService` keeps one warm :class:`~repro.qoc.library.
PulseLibrary` and one :class:`~repro.parallel.ParallelExecutor` alive
across jobs so EPOC's cache-amortization story pays off between
submissions, not just within a batch.  Three kinds of threads cooperate:

* the **asyncio front-end** (``asyncio.start_server``) speaks the
  NDJSON protocol of :mod:`repro.service.protocol` (plus its HTTP shim)
  and never blocks on compilation — event tails run through
  ``asyncio.to_thread``;
* **runner threads** drain the priority :class:`~repro.service.jobs.
  JobQueue`.  Each job executes inside ``contextvars.copy_context()``,
  so its event bus, resource profiler, race stats, breaker board and
  ambient cancel scope are all job-private — the process-global-free
  contract the rest of this package relies on;
* the **drain path** (SIGTERM/SIGINT or the ``shutdown`` op) fires every
  job's :class:`~repro.racing.cancel.CancelToken`, which unwinds running
  compilations at their next cooperative poll point.  The pipeline's
  own ``except BaseException`` handler flushes checkpoint journals
  incomplete, so ``repro compile --resume`` picks up exactly where the
  daemon stopped — the same guarantee a ``kill -9`` mid-batch already
  had.

Compilation configs come from :func:`~repro.service.jobs.
build_job_config`, which routes job options through the CLI's own
``_config`` — a daemon job with default options is bitwise-identical to
``repro compile`` (CI asserts this on checkpoint files).
"""

from __future__ import annotations

import asyncio
import contextvars
import dataclasses
import signal
import threading
import time
from typing import Any, Dict, List, Optional

from repro import telemetry
from repro.circuits import QuantumCircuit
from repro.exceptions import RaceCancelled, ReproError
from repro.obs.events import EventBus, set_bus
from repro.obs.ledger import RunLedger, RunRecord, resolve_ledger_path
from repro.parallel import ParallelExecutor
from repro.qoc.library import PulseLibrary
from repro.racing.cancel import cancel_scope
from repro.service import protocol
from repro.service.jobs import (
    Job,
    JobEventSink,
    JobQueue,
    JobSpec,
    QueueClosed,
    build_job_config,
)
from repro.service.quota import QuotaLedger, QuotaPolicy

__all__ = ["CompileService"]

logger = telemetry.get_logger("service.server")

_FLOWS = ("epoc", "epoc-nogroup", "gate-based", "accqoc", "paqoc")

#: options a submission may set; names are the CLI ``args`` attributes
#: :func:`build_job_config` forwards.  Anything else is rejected so a
#: typo cannot silently fall back to a default.
_ALLOWED_OPTIONS = frozenset(
    {
        "qubit_limit",
        "dt",
        "fidelity",
        "no_zx",
        "workers",
        "qoc_kernel",
        "no_warm_start",
        "warm_start_distance",
        "no_equivalence",
        "race",
        "hedge_delay",
        "race_mode",
        "race_timeout",
        "max_retries",
        "stage_timeout",
        "strict_qoc",
        "checkpoint",
        "checkpoint_every",
        "resume",
        "verify",
        "error_budget",
    }
)


class CompileService:
    """The resident compile daemon (see module docstring).

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    :meth:`start` (tests do).  ``max_jobs`` is the number of runner
    threads, i.e. how many compilations run concurrently; each runner
    may additionally fan out to ``workers`` processes via the shared
    executor.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        library_path: Optional[str] = None,
        store_timeout: Optional[float] = None,
        workers: int = 0,
        max_jobs: int = 2,
        quota: Optional[QuotaPolicy] = None,
        ledger: bool = False,
        ledger_path: Optional[str] = None,
        drain_grace_seconds: float = 10.0,
    ) -> None:
        self.host = host
        self.port = port
        self.drain_grace_seconds = drain_grace_seconds
        self.max_jobs = max(1, int(max_jobs))

        # the shared warm state every job reads from / merges back into
        self.library = PulseLibrary()
        self._library_lock = threading.Lock()
        self.store = None
        if library_path:
            from repro.db import open_store

            self.store = open_store(
                library_path, timeout_seconds=store_timeout
            )
            merged = self.store.pull(self.library)
            logger.info(
                "service: warmed library with %d entries from %s",
                merged,
                library_path,
            )
        self.executor = ParallelExecutor(workers=max(0, int(workers)))

        self.queue = JobQueue()
        self.quota = QuotaLedger(quota)
        self._jobs: Dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        self._job_serial = 0

        self._ledger_enabled = ledger or ledger_path is not None
        self._ledger_path = ledger_path
        self._ledger_lock = threading.Lock()

        self._draining = threading.Event()
        self._drain_reason = ""
        self._ready = threading.Event()
        self._stopped = threading.Event()
        self._runners: List[threading.Thread] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._drain_async: Optional[asyncio.Event] = None
        self._serve_thread: Optional[threading.Thread] = None
        self.started_at = time.time()

    # -- store helpers ----------------------------------------------------

    def _sync_store(self) -> None:
        if self.store is None:
            return
        try:
            with self._library_lock:
                self.store.sync(self.library)
        except Exception:
            logger.warning(
                "service: library sync failed during drain", exc_info=True
            )

    # -- ledger -----------------------------------------------------------

    def _record_service_row(self, record: RunRecord) -> None:
        if not self._ledger_enabled:
            return
        try:
            with self._ledger_lock:
                RunLedger(resolve_ledger_path(self._ledger_path)).record(
                    record
                )
        except Exception:
            logger.warning("service: ledger write failed", exc_info=True)

    # -- job bookkeeping --------------------------------------------------

    def submit(self, spec: JobSpec) -> Dict[str, Any]:
        """Admit and enqueue one job; protocol-shaped response dict."""
        if self._draining.is_set():
            return protocol.error_response(
                "shutting-down", "service is draining; try another instance"
            )
        if spec.flow not in _FLOWS:
            return protocol.error_response(
                "bad-request",
                f"unknown flow {spec.flow!r} (expected one of {_FLOWS})",
            )
        unknown = sorted(set(spec.options) - _ALLOWED_OPTIONS)
        if unknown:
            return protocol.error_response(
                "bad-request", f"unknown options {unknown}"
            )
        reason = self.quota.admit(spec.tenant)
        if reason is not None:
            self._record_service_row(
                RunRecord(
                    circuit=spec.name,
                    method="service.reject",
                    kind="service",
                    label=spec.tenant,
                    extra={"reason": reason},
                )
            )
            return protocol.error_response("quota", reason)
        with self._jobs_lock:
            self._job_serial += 1
            job = Job(f"j-{self._job_serial:06d}", spec)
            self._jobs[job.id] = job
        try:
            self.queue.push(job)
        except QueueClosed:
            job.finish("rejected", error="service is draining")
            self.quota.record_finish(spec.tenant, started=False)
            return protocol.error_response(
                "shutting-down", "service is draining; try another instance"
            )
        logger.info(
            "service: queued %s (%s, tenant=%s, priority=%d)",
            job.id,
            spec.name,
            spec.tenant,
            spec.priority,
        )
        return protocol.ok_response(job=job.id, state=job.state)

    def get_job(self, job_id: str) -> Optional[Job]:
        with self._jobs_lock:
            return self._jobs.get(job_id)

    def jobs_view(self) -> List[Dict[str, Any]]:
        with self._jobs_lock:
            jobs = list(self._jobs.values())
        return [job.view() for job in jobs]

    def cancel_job(self, job_id: str) -> Dict[str, Any]:
        job = self.get_job(job_id)
        if job is None:
            return protocol.error_response(
                "not-found", f"no job {job_id!r}"
            )
        was_queued = job.state == "queued"
        if not job.request_cancel():
            return protocol.error_response(
                "conflict", f"job {job_id} already {job.state}"
            )
        if was_queued and job.state == "cancelled":
            self.quota.record_finish(job.spec.tenant, started=False)
        logger.info("service: cancel requested for %s", job_id)
        return protocol.ok_response(job=job_id, state=job.state)

    def stats_view(self) -> Dict[str, Any]:
        with self._jobs_lock:
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
        with self._library_lock:
            library = {
                "entries": len(self.library.entries()),
                "hits": self.library.hits,
                "misses": self.library.misses,
                "equiv_hits": self.library.equiv_hits,
            }
        return protocol.ok_response(
            protocol=protocol.PROTOCOL_VERSION,
            uptime_seconds=time.time() - self.started_at,
            draining=self._draining.is_set(),
            jobs=states,
            queue_depth=len(self.queue),
            library=library,
            quota=self.quota.snapshot(),
        )

    # -- job execution (runner threads) -----------------------------------

    def _runner_loop(self) -> None:
        while True:
            job = self.queue.pop(timeout=0.2)
            if job is None:
                if self._draining.is_set():
                    return
                continue
            # a fresh context per job: the bus/profiler/stats/breaker
            # ContextVars set below live and die with this job only
            contextvars.copy_context().run(self._execute_job, job)

    def _execute_job(self, job: Job) -> None:
        if not job.mark_running():
            # cancelled while queued; quota already settled by cancel_job
            return
        self.quota.record_start(job.spec.tenant)
        spec = job.spec
        bus = EventBus([JobEventSink(job)], enabled=True)
        set_bus(bus)
        started = time.perf_counter()
        try:
            report = self._compile(job)
        except RaceCancelled:
            job.finish("cancelled", error="cancelled by client")
            logger.info("service: %s cancelled", job.id)
        except ReproError as exc:
            job.finish("failed", error=str(exc))
            logger.warning("service: %s failed: %s", job.id, exc)
        except Exception as exc:  # noqa: BLE001 — job isolation boundary
            job.finish("failed", error=f"{type(exc).__name__}: {exc}")
            logger.warning("service: %s crashed", job.id, exc_info=True)
        else:
            job.finish(
                "done",
                result={
                    "summary": report.summary_row(),
                    "latency_ns": report.latency_ns,
                    "fidelity": report.fidelity,
                    "pulse_count": report.pulse_count,
                    "compile_seconds": report.compile_seconds,
                    "wall_seconds": time.perf_counter() - started,
                    "cache_hits": int(report.stats.get("cache_hits", 0)),
                    "cache_misses": int(report.stats.get("cache_misses", 0)),
                },
            )
            logger.info("service: %s done (%s)", job.id, spec.name)
        finally:
            set_bus(None)
            bus.close()
            self.quota.record_finish(spec.tenant)

    def _compile(self, job: Job):
        """Run one job's compilation in the runner's (job-scoped) context."""
        spec = job.spec
        circuit = QuantumCircuit.from_qasm(spec.qasm)
        config = build_job_config(spec.options)
        # tag the run's ledger row with the tenant so `repro stats` can
        # slice service traffic per client (configs are frozen; replace)
        obs_updates: Dict[str, Any] = {}
        if config.obs.label is None:
            obs_updates["label"] = spec.tenant
        if self._ledger_enabled and config.obs.ledger is None:
            obs_updates["ledger"] = True
            if config.obs.ledger_path is None and self._ledger_path:
                obs_updates["ledger_path"] = self._ledger_path
        if obs_updates:
            config = dataclasses.replace(
                config, obs=dataclasses.replace(config.obs, **obs_updates)
            )

        if spec.flow in ("epoc", "epoc-nogroup"):
            # per-job clone of the shared warm library: jobs get warm
            # hits without sharing mutable state mid-flight, and per-job
            # hit/miss counters stay meaningful
            with self._library_lock:
                seed = dict(self.library.entries())
            job_library = PulseLibrary(
                config=config.qoc,
                match_global_phase=config.cache_global_phase,
                resilience=config.resilience,
                racing=config.racing,
            )
            job_library.merge_entries(seed)
            from repro.core import EPOCPipeline

            flow = EPOCPipeline(
                config,
                library=job_library,
                use_regrouping=spec.flow == "epoc",
            )
            with cancel_scope(job.cancel):
                report = flow.compile(
                    circuit, name=spec.name, executor=self.executor
                )
            with self._library_lock:
                self.library.merge_entries(dict(job_library.entries()))
                if self.store is not None:
                    try:
                        self.store.sync(self.library)
                    except Exception:
                        logger.warning(
                            "service: post-job library sync failed",
                            exc_info=True,
                        )
            return report

        from repro.baselines import AccQOCFlow, GateBasedFlow, PAQOCFlow

        flow_cls = {
            "gate-based": GateBasedFlow,
            "accqoc": AccQOCFlow,
            "paqoc": PAQOCFlow,
        }[spec.flow]
        with cancel_scope(job.cancel):
            return flow_cls(config).compile(circuit, name=spec.name)

    # -- drain ------------------------------------------------------------

    def request_drain(self, reason: str) -> None:
        """Begin graceful shutdown; safe from any thread or a signal
        handler.  Idempotent."""
        if self._draining.is_set():
            return
        self._drain_reason = reason
        self._draining.set()
        logger.info("service: draining (%s)", reason)
        with self._jobs_lock:
            jobs = list(self._jobs.values())
        for job in jobs:
            if job.request_cancel() and job.state == "cancelled":
                # was still queued; settle its quota slot
                self.quota.record_finish(job.spec.tenant, started=False)
        self.queue.close()
        loop, drain_async = self._loop, self._drain_async
        if loop is not None and drain_async is not None:
            loop.call_soon_threadsafe(drain_async.set)

    # -- asyncio front-end ------------------------------------------------

    async def _handle_native(
        self,
        request: Dict[str, Any],
        writer: asyncio.StreamWriter,
    ) -> bool:
        """Answer one validated native request.  Returns ``False`` when
        the connection should close afterwards."""
        op = request["op"]
        if op == "ping":
            writer.write(
                protocol.encode_message(
                    protocol.ok_response(
                        protocol=protocol.PROTOCOL_VERSION,
                        draining=self._draining.is_set(),
                    )
                )
            )
        elif op == "submit":
            spec = JobSpec(
                name=request.get("name", "circuit"),
                qasm=request["qasm"],
                flow=request.get("flow", "epoc"),
                priority=int(request.get("priority", 0)),
                tenant=request.get("tenant", "default"),
                options=dict(request.get("options", {})),
            )
            writer.write(protocol.encode_message(self.submit(spec)))
        elif op == "status":
            job_id = request.get("job")
            if job_id is None:
                writer.write(
                    protocol.encode_message(
                        protocol.ok_response(jobs=self.jobs_view())
                    )
                )
            else:
                job = self.get_job(job_id)
                if job is None:
                    writer.write(
                        protocol.encode_message(
                            protocol.error_response(
                                "not-found", f"no job {job_id!r}"
                            )
                        )
                    )
                else:
                    writer.write(
                        protocol.encode_message(
                            protocol.ok_response(**job.view())
                        )
                    )
        elif op == "events":
            await self._stream_events(request, writer)
        elif op == "result":
            job = self.get_job(request["job"])
            if job is None:
                writer.write(
                    protocol.encode_message(
                        protocol.error_response(
                            "not-found", f"no job {request['job']!r}"
                        )
                    )
                )
            else:
                writer.write(
                    protocol.encode_message(
                        protocol.ok_response(**job.result_view())
                    )
                )
        elif op == "cancel":
            writer.write(
                protocol.encode_message(self.cancel_job(request["job"]))
            )
        elif op == "stats":
            writer.write(protocol.encode_message(self.stats_view()))
        elif op == "shutdown":
            writer.write(
                protocol.encode_message(
                    protocol.ok_response(draining=True)
                )
            )
            await writer.drain()
            self.request_drain("shutdown op")
            return False
        await writer.drain()
        return True

    async def _stream_events(
        self, request: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        job = self.get_job(request["job"])
        if job is None:
            writer.write(
                protocol.encode_message(
                    protocol.error_response(
                        "not-found", f"no job {request['job']!r}"
                    )
                )
            )
            return
        after = int(request.get("after", 0))
        follow = bool(request.get("follow", False))
        while True:
            batch, finished = await asyncio.to_thread(
                job.wait_events, after, 0.5 if follow else 0.0
            )
            if writer.is_closing():
                return  # the client hung up mid-stream
            for event in batch:
                writer.write(protocol.encode_message(event))
            after += len(batch)
            await writer.drain()
            if finished or not follow:
                writer.write(
                    protocol.encode_message(
                        {"done": True, "job": job.id, "state": job.state}
                    )
                )
                return

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            first = await reader.readline()
            if not first:
                return
            if protocol.looks_like_http(first):
                await self._handle_http(first, reader, writer)
                return
            line: Optional[bytes] = first
            while line:
                try:
                    request = protocol.validate_request(
                        protocol.decode_message(line)
                    )
                except protocol.ProtocolError as exc:
                    writer.write(
                        protocol.encode_message(
                            protocol.error_response("bad-request", str(exc))
                        )
                    )
                    await writer.drain()
                else:
                    if not await self._handle_native(request, writer):
                        break
                line = await reader.readline()
        except (ConnectionResetError, BrokenPipeError, asyncio.LimitOverrunError):
            pass
        except asyncio.CancelledError:
            # server closing mid-connection during drain — not an error
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (Exception, asyncio.CancelledError):
                pass

    async def _handle_http(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        # one request per connection; read headers, then any body
        content_length = 0
        while True:
            header = await reader.readline()
            if not header or header in (b"\r\n", b"\n"):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    content_length = 0
        body = (
            await reader.readexactly(content_length)
            if content_length
            else None
        )
        try:
            request = protocol.validate_request(
                protocol.parse_http_request(
                    first.decode("latin-1").strip(), body
                )
            )
        except protocol.ProtocolError as exc:
            payload = protocol.error_response("bad-request", str(exc))
            if "no route" in str(exc):
                payload = protocol.error_response("not-found", str(exc))
            writer.write(protocol.http_response(payload))
            await writer.drain()
            return
        op = request["op"]
        if op == "ping":
            payload = protocol.ok_response(
                protocol=protocol.PROTOCOL_VERSION,
                draining=self._draining.is_set(),
            )
        elif op == "submit":
            payload = self.submit(
                JobSpec(
                    name=request.get("name", "circuit"),
                    qasm=request["qasm"],
                    flow=request.get("flow", "epoc"),
                    priority=int(request.get("priority", 0)),
                    tenant=request.get("tenant", "default"),
                    options=dict(request.get("options", {})),
                )
            )
        elif op == "status":
            job_id = request.get("job")
            if job_id is None:
                payload = protocol.ok_response(jobs=self.jobs_view())
            else:
                job = self.get_job(job_id)
                payload = (
                    protocol.ok_response(**job.view())
                    if job is not None
                    else protocol.error_response(
                        "not-found", f"no job {job_id!r}"
                    )
                )
        elif op == "events":
            job = self.get_job(request["job"])
            if job is None:
                payload = protocol.error_response(
                    "not-found", f"no job {request['job']!r}"
                )
            else:
                batch, _ = job.wait_events(0, timeout=0.0)
                payload = protocol.ok_response(job=job.id, events=batch)
        elif op == "result":
            job = self.get_job(request["job"])
            payload = (
                protocol.ok_response(**job.result_view())
                if job is not None
                else protocol.error_response(
                    "not-found", f"no job {request['job']!r}"
                )
            )
        elif op == "cancel":
            payload = self.cancel_job(request["job"])
        elif op == "stats":
            payload = self.stats_view()
        elif op == "shutdown":
            payload = protocol.ok_response(draining=True)
            self.request_drain("http shutdown")
        else:  # pragma: no cover — parse_http_request only emits the above
            payload = protocol.error_response("bad-request", f"op {op!r}")
        writer.write(protocol.http_response(payload))
        await writer.drain()

    # -- lifecycle --------------------------------------------------------

    async def _main(self) -> None:
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._drain_async = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum,
                    self.request_drain,
                    signal.Signals(signum).name,
                )
            except (NotImplementedError, RuntimeError, ValueError):
                # non-main thread (tests) or unsupported platform; the
                # shutdown op and stop() still drain cleanly
                pass

        for index in range(self.max_jobs):
            runner = threading.Thread(
                target=self._runner_loop,
                name=f"service-runner-{index}",
                daemon=True,
            )
            runner.start()
            self._runners.append(runner)

        server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = server.sockets[0].getsockname()[1]
        logger.info(
            "service: listening on %s:%d (%d runners, %d workers)",
            self.host,
            self.port,
            self.max_jobs,
            self.executor.workers,
        )
        self._ready.set()
        try:
            async with server:
                await self._drain_async.wait()
        finally:
            self._ready.set()  # never leave start() hanging on a crash
            deadline = time.monotonic() + self.drain_grace_seconds
            for runner in self._runners:
                runner.join(max(0.1, deadline - time.monotonic()))
            self._sync_store()
            self.executor.shutdown()
            self._stopped.set()
            logger.info(
                "service: stopped (%s)", self._drain_reason or "drained"
            )

    def serve_forever(self) -> None:
        """Run the daemon in the calling thread until drained."""
        asyncio.run(self._main())

    def start(self, timeout: float = 10.0) -> "CompileService":
        """Run the daemon on a background thread; returns once the
        socket is bound (used by tests and ``repro serve --check``)."""
        self._serve_thread = threading.Thread(
            target=self.serve_forever, name="service-main", daemon=True
        )
        self._serve_thread.start()
        if not self._ready.wait(timeout):
            raise ReproError("compile service failed to start in time")
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Drain and wait for full shutdown (background-thread mode)."""
        self.request_drain("stop()")
        if self._serve_thread is not None:
            self._serve_thread.join(timeout)
        self._stopped.wait(1.0)

"""The compile service's wire protocol.

Native transport is **NDJSON over TCP**: every request and every
response is one JSON object on one line.  A connection may issue any
number of requests; the ``events`` op streams one response line per
event before its terminal ``{"done": true}`` line.  The same port also
answers a minimal **HTTP/1.1 JSON shim** — the server sniffs the first
bytes of a connection for an HTTP method and, if found, parses one
request, maps it onto the native op table and answers with a single
JSON body (connection close).  The shim exists so ``curl`` works
against a running daemon; scripted clients should prefer the native
protocol (it can stream).

Requests::

    {"op": "ping"}
    {"op": "submit", "name": ..., "qasm": ..., "flow": ..., "priority": ...,
     "tenant": ..., "options": {...}}
    {"op": "status"}                 # all jobs
    {"op": "status", "job": ID}
    {"op": "events", "job": ID, "after": SEQ, "follow": BOOL}
    {"op": "result", "job": ID}
    {"op": "cancel", "job": ID}
    {"op": "stats"}
    {"op": "shutdown"}

Responses carry ``"ok": true`` plus op-specific fields, or ``"ok":
false`` with ``error`` (human text) and ``code`` (machine tag:
``bad-request``, ``not-found``, ``quota``, ``conflict``,
``shutting-down``, ``internal``).

HTTP mapping::

    GET  /healthz            -> ping          GET  /stats -> stats
    GET  /jobs               -> status (all)
    GET  /jobs/ID            -> status        GET  /jobs/ID/events -> events
    POST /jobs   (JSON body) -> submit        POST /jobs/ID/cancel -> cancel
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

from repro.exceptions import ReproError

__all__ = [
    "PROTOCOL_VERSION",
    "OPS",
    "ProtocolError",
    "encode_message",
    "decode_message",
    "validate_request",
    "error_response",
    "ok_response",
    "looks_like_http",
    "parse_http_request",
    "http_response",
]

PROTOCOL_VERSION = 1

#: every native op and the fields it accepts beyond ``op``.
OPS: Dict[str, Tuple[str, ...]] = {
    "ping": (),
    "submit": ("name", "qasm", "flow", "priority", "tenant", "options"),
    "status": ("job",),
    "events": ("job", "after", "follow"),
    "result": ("job",),
    "cancel": ("job",),
    "stats": (),
    "shutdown": (),
}

#: ops that require a ``job`` field.
_JOB_REQUIRED = frozenset({"events", "result", "cancel"})

#: request size guard: a million-character "line" is not a protocol
#: message, it is a client bug or an attack.
MAX_MESSAGE_BYTES = 8 * 1024 * 1024

_HTTP_METHODS = (b"GET ", b"POST ", b"PUT ", b"DELETE ", b"HEAD ", b"OPTIONS ")


class ProtocolError(ReproError):
    """A malformed or invalid protocol message."""


def encode_message(message: Dict[str, Any]) -> bytes:
    """One NDJSON line (UTF-8, trailing newline) for ``message``."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode_message(line: "bytes | str") -> Dict[str, Any]:
    """Parse one NDJSON line; raises :class:`ProtocolError` when invalid."""
    if isinstance(line, bytes):
        if len(line) > MAX_MESSAGE_BYTES:
            raise ProtocolError(
                f"message exceeds {MAX_MESSAGE_BYTES} bytes"
            )
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"message is not valid UTF-8: {exc}")
    line = line.strip()
    if not line:
        raise ProtocolError("empty message")
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"message is not valid JSON: {exc}")
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


def validate_request(message: Dict[str, Any]) -> Dict[str, Any]:
    """Check a decoded request against the op table; returns it cleaned.

    Unknown fields are rejected rather than ignored — silently dropping
    a misspelled ``prioriy`` would change behaviour without any signal.
    """
    op = message.get("op")
    if not isinstance(op, str) or op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r} (expected one of {sorted(OPS)})"
        )
    allowed = OPS[op]
    extras = sorted(set(message) - {"op"} - set(allowed))
    if extras:
        raise ProtocolError(f"op {op!r} does not accept fields {extras}")
    if op in _JOB_REQUIRED and not isinstance(message.get("job"), str):
        raise ProtocolError(f"op {op!r} requires a string 'job' field")
    if op == "submit":
        qasm = message.get("qasm")
        if not isinstance(qasm, str) or not qasm.strip():
            raise ProtocolError("submit requires non-empty 'qasm' text")
        if "priority" in message and not isinstance(
            message["priority"], int
        ):
            raise ProtocolError("submit 'priority' must be an integer")
        if "options" in message and not isinstance(message["options"], dict):
            raise ProtocolError("submit 'options' must be an object")
        for field in ("name", "flow", "tenant"):
            if field in message and not isinstance(message[field], str):
                raise ProtocolError(f"submit {field!r} must be a string")
    if op == "events":
        if "after" in message and not isinstance(message["after"], int):
            raise ProtocolError("events 'after' must be an integer")
        if "follow" in message and not isinstance(message["follow"], bool):
            raise ProtocolError("events 'follow' must be a boolean")
    if op == "status" and "job" in message and not isinstance(
        message["job"], str
    ):
        raise ProtocolError("status 'job' must be a string")
    return message


def ok_response(**fields: Any) -> Dict[str, Any]:
    return {"ok": True, **fields}


def error_response(code: str, message: str) -> Dict[str, Any]:
    return {"ok": False, "code": code, "error": message}


# -- the HTTP shim --------------------------------------------------------


def looks_like_http(first_bytes: bytes) -> bool:
    """Whether a connection opened with an HTTP request line."""
    return first_bytes.startswith(_HTTP_METHODS)


def parse_http_request(
    request_line: str, body: Optional[bytes]
) -> Dict[str, Any]:
    """Map one HTTP request onto a native protocol request.

    Raises :class:`ProtocolError` for unroutable paths; the caller turns
    that into a 404/400.
    """
    parts = request_line.split()
    if len(parts) < 2:
        raise ProtocolError(f"malformed HTTP request line {request_line!r}")
    method, path = parts[0].upper(), parts[1].split("?", 1)[0]
    segments = [segment for segment in path.split("/") if segment]
    if method == "GET":
        if segments == ["healthz"]:
            return {"op": "ping"}
        if segments == ["stats"]:
            return {"op": "stats"}
        if segments == ["jobs"]:
            return {"op": "status"}
        if len(segments) == 2 and segments[0] == "jobs":
            return {"op": "status", "job": segments[1]}
        if (
            len(segments) == 3
            and segments[0] == "jobs"
            and segments[2] == "events"
        ):
            return {"op": "events", "job": segments[1]}
        if (
            len(segments) == 3
            and segments[0] == "jobs"
            and segments[2] == "result"
        ):
            return {"op": "result", "job": segments[1]}
    elif method == "POST":
        if segments == ["jobs"]:
            if not body:
                raise ProtocolError("POST /jobs requires a JSON body")
            payload = decode_message(body)
            payload["op"] = "submit"
            return payload
        if (
            len(segments) == 3
            and segments[0] == "jobs"
            and segments[2] == "cancel"
        ):
            return {"op": "cancel", "job": segments[1]}
        if segments == ["shutdown"]:
            return {"op": "shutdown"}
    raise ProtocolError(f"no route for {method} {path}")


_HTTP_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    409: "Conflict",
    429: "Too Many Requests",
    503: "Service Unavailable",
}

#: protocol error codes -> HTTP status.
_CODE_STATUS = {
    "bad-request": 400,
    "not-found": 404,
    "conflict": 409,
    "quota": 429,
    "shutting-down": 503,
    "internal": 500,
}


def http_response(payload: Dict[str, Any]) -> bytes:
    """One complete ``HTTP/1.1`` response (connection close) for a
    native response object."""
    if payload.get("ok", False):
        status = 200
    else:
        status = _CODE_STATUS.get(str(payload.get("code")), 400)
    body = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
    head = (
        f"HTTP/1.1 {status} {_HTTP_STATUS_TEXT.get(status, 'Error')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    ).encode("ascii")
    return head + body

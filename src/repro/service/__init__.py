"""The resident compile daemon (see README "Compilation service").

``repro.service`` turns the one-shot CLI pipeline into a long-lived
process so EPOC's amortization story — one warm
:class:`~repro.qoc.library.PulseLibrary` serving many circuits — pays
off across *jobs*, not just across the circuits of a single batch:

* :mod:`repro.service.protocol` — the line-delimited JSON wire protocol
  (one request/response object per line over a local TCP socket) plus a
  thin HTTP/JSON shim (``GET /jobs``, ``POST /jobs``, ...) served on the
  same port by sniffing the first request line.
* :mod:`repro.service.jobs` — job specs, per-job state machines with
  buffered event streams, and the priority queue the runner threads
  drain.
* :mod:`repro.service.quota` — per-tenant sliding-window admission
  control; every decision (accept or reject) is recorded in the run
  ledger.
* :mod:`repro.service.server` — :class:`CompileService`: the asyncio
  front-end, the job-runner threads that execute compilations inside
  per-job :mod:`contextvars` contexts (own event bus, own cancel scope,
  own race stats), the shared warm library, and SIGTERM/SIGINT graceful
  drain.
* :mod:`repro.service.client` — the blocking socket client behind
  ``repro submit`` / ``repro status`` / ``repro cancel``.

CLI: ``repro serve`` starts the daemon; ``repro submit circuit.qasm
--wait`` round-trips a job through it.
"""

from __future__ import annotations

from repro.service.client import ServiceClient
from repro.service.jobs import Job, JobQueue, JobSpec, build_job_config
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_message,
)
from repro.service.quota import QuotaLedger, QuotaPolicy
from repro.service.server import CompileService

__all__ = [
    "CompileService",
    "ServiceClient",
    "Job",
    "JobQueue",
    "JobSpec",
    "QuotaLedger",
    "QuotaPolicy",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "build_job_config",
    "decode_message",
    "encode_message",
]

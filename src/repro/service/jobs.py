"""Job state for the compile service.

A submitted circuit becomes a :class:`Job`: a :class:`JobSpec` (what to
compile), a small state machine (``queued -> running -> done | failed |
cancelled``), a :class:`~repro.racing.cancel.CancelToken`, and a
buffered, sequence-numbered event stream.  Runner threads drain a
priority :class:`JobQueue`; clients tail a job's events through
:meth:`Job.wait_events` without ever touching the runner's context.

The event buffer is the bridge between the process-global-free
observability layer and the wire: each job runs with its *own*
:class:`~repro.obs.events.EventBus` (installed in the job's copied
``contextvars`` context) whose only sink is a :class:`JobEventSink`
appending here.  Two concurrent jobs therefore produce two disjoint
streams by construction — the regression the service tests pin down.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Any, Dict, List, Optional, Tuple

from repro.racing.cancel import CancelToken

__all__ = [
    "JOB_STATES",
    "Job",
    "JobEventSink",
    "JobQueue",
    "JobSpec",
    "QueueClosed",
    "build_job_config",
]

#: every state a job can be in.  ``rejected`` jobs (quota) are recorded
#: in the ledger but never enter the queue.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled", "rejected")

_TERMINAL = frozenset({"done", "failed", "cancelled", "rejected"})


@dataclass(frozen=True)
class JobSpec:
    """What one job compiles: a circuit plus the knobs ``repro compile``
    would have taken on the command line (in ``options``)."""

    name: str
    qasm: str
    flow: str = "epoc"
    priority: int = 0
    tenant: str = "default"
    options: Dict[str, Any] = field(default_factory=dict)


class Job:
    """One submission's full lifetime: spec, state, cancel token, events.

    All mutation happens under ``_cond``; readers get consistent
    snapshots via :meth:`view` and blocking tails via
    :meth:`wait_events`.
    """

    def __init__(self, job_id: str, spec: JobSpec) -> None:
        self.id = job_id
        self.spec = spec
        self.cancel = CancelToken()
        self.created_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self._cond = threading.Condition()
        self._state = "queued"
        self._events: List[Dict[str, Any]] = []
        self._result: Optional[Dict[str, Any]] = None
        self._error: Optional[str] = None

    # -- state ------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._cond:
            return self._state

    @property
    def finished(self) -> bool:
        with self._cond:
            return self._state in _TERMINAL

    def mark_running(self) -> bool:
        """Transition queued -> running; ``False`` when the job was
        cancelled while still queued (the runner must skip it)."""
        with self._cond:
            if self._state != "queued":
                return False
            self._state = "running"
            self.started_at = time.time()
            self._cond.notify_all()
            return True

    def finish(
        self,
        state: str,
        result: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
    ) -> None:
        if state not in _TERMINAL:
            raise ValueError(f"{state!r} is not a terminal job state")
        with self._cond:
            if self._state in _TERMINAL:
                return
            self._state = state
            self._result = result
            self._error = error
            self.finished_at = time.time()
            self._cond.notify_all()

    def request_cancel(self) -> bool:
        """Cancel the job; ``True`` when the request changed anything.

        A queued job finishes ``cancelled`` immediately; a running job
        gets its token fired and finishes when the compilation unwinds
        through the next cooperative poll point.
        """
        with self._cond:
            if self._state in _TERMINAL:
                return False
            self.cancel.cancel()
            if self._state == "queued":
                self._state = "cancelled"
                self.finished_at = time.time()
            self._cond.notify_all()
            return True

    # -- events -----------------------------------------------------------

    def append_event(self, event: Dict[str, Any]) -> None:
        """Buffer one observability event, stamped with this job's id and
        a per-job sequence number (clients resume tails with ``after``)."""
        with self._cond:
            stamped = dict(event)
            stamped["job"] = self.id
            stamped["seq"] = len(self._events) + 1
            self._events.append(stamped)
            self._cond.notify_all()

    def wait_events(
        self, after: int = 0, timeout: float = 0.5
    ) -> Tuple[List[Dict[str, Any]], bool]:
        """Events with ``seq > after``; blocks up to ``timeout`` when
        there are none yet.  Returns ``(batch, finished)`` where
        ``finished`` means no further events will ever arrive."""
        deadline = time.monotonic() + max(timeout, 0.0)
        with self._cond:
            while (
                len(self._events) <= after
                and self._state not in _TERMINAL
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            batch = list(self._events[after:])
            finished = (
                self._state in _TERMINAL
                and after + len(batch) == len(self._events)
            )
            return batch, finished

    # -- snapshots --------------------------------------------------------

    def view(self) -> Dict[str, Any]:
        with self._cond:
            payload: Dict[str, Any] = {
                "job": self.id,
                "name": self.spec.name,
                "flow": self.spec.flow,
                "tenant": self.spec.tenant,
                "priority": self.spec.priority,
                "state": self._state,
                "created_at": self.created_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "events": len(self._events),
            }
            if self._error is not None:
                payload["error"] = self._error
            return payload

    def result_view(self) -> Dict[str, Any]:
        with self._cond:
            payload = {"job": self.id, "state": self._state}
            if self._result is not None:
                payload["result"] = self._result
            if self._error is not None:
                payload["error"] = self._error
            return payload


class JobEventSink:
    """An :class:`~repro.obs.events.EventBus` sink feeding one job's
    buffer.  Duck-typed: the bus only needs ``handle``/``close``."""

    def __init__(self, job: Job) -> None:
        self._job = job

    def handle(self, event: Dict[str, Any]) -> None:
        self._job.append_event(event)

    def close(self) -> None:  # nothing to flush; buffer lives on the job
        pass


class QueueClosed(Exception):
    """Raised by :meth:`JobQueue.push` after the queue is closed."""


class JobQueue:
    """Priority queue of jobs (lower ``priority`` first, FIFO within a
    priority).  ``pop`` blocks; ``close`` wakes every popper with
    ``None`` so runner threads can drain and exit."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._heap: List[Tuple[int, int, Job]] = []
        self._seq = itertools.count()
        self._closed = False

    def push(self, job: Job) -> None:
        with self._cond:
            if self._closed:
                raise QueueClosed("job queue is closed")
            heapq.heappush(
                self._heap, (job.spec.priority, next(self._seq), job)
            )
            self._cond.notify()

    def pop(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Next job by priority, or ``None`` on timeout / closed-empty."""
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._cond:
            while not self._heap:
                if self._closed:
                    return None
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._cond.wait(remaining)
            return heapq.heappop(self._heap)[2]

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def __len__(self) -> int:
        with self._cond:
            return len(self._heap)


# -- config construction --------------------------------------------------

#: the fields :func:`repro.cli._config` reads via *direct* attribute
#: access (everything else goes through ``getattr`` with the same
#: defaults argparse would supply).  These values mirror the ``repro
#: compile`` argument defaults — keeping them equal is what makes a
#: daemon job bitwise-identical to the CLI run (asserted in CI).
_DEFAULTS: Dict[str, Any] = {
    "qubit_limit": 3,
    "dt": 1.0,
    "fidelity": 0.995,
}


def build_job_config(options: Optional[Dict[str, Any]] = None):
    """An :class:`~repro.config.EPOCConfig` for one job.

    ``options`` uses the CLI's ``args`` attribute names (``workers``,
    ``checkpoint``, ``race``, ...).  The namespace is handed to the same
    :func:`repro.cli._config` the ``compile`` command uses, so a daemon
    job and ``repro compile`` with equal flags produce *identical*
    configs by construction — there is no second config builder to
    drift.
    """
    from repro import cli  # late: cli imports are heavyweight

    merged = {**_DEFAULTS, **dict(options or {})}
    return cli._config(SimpleNamespace(**merged))

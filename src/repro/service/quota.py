"""Per-tenant admission control for the compile service.

A :class:`QuotaPolicy` bounds three things per tenant: submission rate
(sliding one-minute window), queue depth, and concurrent running jobs.
:class:`QuotaLedger` applies the policy and keeps the counters the
``stats`` op and the run ledger report.  Every decision — accept or
reject — is observable: the server records rejections as ``service``
rows in the :mod:`repro.obs.ledger` run ledger so capacity pressure
shows up in ``repro stats`` history, not just in client error strings.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Optional

__all__ = ["QuotaLedger", "QuotaPolicy"]

_WINDOW_SECONDS = 60.0


@dataclass(frozen=True)
class QuotaPolicy:
    """Per-tenant limits; ``0`` disables a limit."""

    jobs_per_minute: int = 0
    max_pending: int = 0
    max_running_per_tenant: int = 0


class _TenantState:
    __slots__ = ("submissions", "pending", "running", "accepted", "rejected")

    def __init__(self) -> None:
        self.submissions: Deque[float] = deque()
        self.pending = 0
        self.running = 0
        self.accepted = 0
        self.rejected = 0


class QuotaLedger:
    """Thread-safe quota accounting keyed by tenant name."""

    def __init__(self, policy: Optional[QuotaPolicy] = None) -> None:
        self.policy = policy or QuotaPolicy()
        self._lock = threading.Lock()
        self._tenants: Dict[str, _TenantState] = {}

    def _state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = self._tenants[tenant] = _TenantState()
        return state

    def admit(self, tenant: str, now: Optional[float] = None) -> Optional[str]:
        """Try to admit one submission; returns ``None`` on success or a
        human-readable rejection reason (and counts the rejection)."""
        now = time.time() if now is None else now
        policy = self.policy
        with self._lock:
            state = self._state(tenant)
            window = state.submissions
            while window and window[0] <= now - _WINDOW_SECONDS:
                window.popleft()
            reason = None
            if (
                policy.jobs_per_minute
                and len(window) >= policy.jobs_per_minute
            ):
                reason = (
                    f"tenant {tenant!r} exceeded {policy.jobs_per_minute} "
                    f"submissions per minute"
                )
            elif policy.max_pending and state.pending >= policy.max_pending:
                reason = (
                    f"tenant {tenant!r} already has {state.pending} queued "
                    f"jobs (limit {policy.max_pending})"
                )
            elif (
                policy.max_running_per_tenant
                and state.running >= policy.max_running_per_tenant
            ):
                reason = (
                    f"tenant {tenant!r} already has {state.running} running "
                    f"jobs (limit {policy.max_running_per_tenant})"
                )
            if reason is not None:
                state.rejected += 1
                return reason
            window.append(now)
            state.pending += 1
            state.accepted += 1
            return None

    def record_start(self, tenant: str) -> None:
        """A queued job began running."""
        with self._lock:
            state = self._state(tenant)
            state.pending = max(0, state.pending - 1)
            state.running += 1

    def record_finish(self, tenant: str, started: bool = True) -> None:
        """A job left the system (any terminal state).  ``started=False``
        for jobs cancelled while still queued."""
        with self._lock:
            state = self._state(tenant)
            if started:
                state.running = max(0, state.running - 1)
            else:
                state.pending = max(0, state.pending - 1)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "policy": {
                    "jobs_per_minute": self.policy.jobs_per_minute,
                    "max_pending": self.policy.max_pending,
                    "max_running_per_tenant": (
                        self.policy.max_running_per_tenant
                    ),
                },
                "tenants": {
                    tenant: {
                        "pending": state.pending,
                        "running": state.running,
                        "accepted": state.accepted,
                        "rejected": state.rejected,
                    }
                    for tenant, state in sorted(self._tenants.items())
                },
            }

"""Blocking socket client for the compile service.

One short-lived connection per request (the daemon is local; connect is
cheap) except :meth:`ServiceClient.events` with ``follow=True``, which
keeps its connection open and yields events as the daemon streams them.
This is the client behind ``repro submit`` / ``repro status`` /
``repro cancel``.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Iterator, Optional

from repro.exceptions import ReproError
from repro.service import protocol

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(ReproError):
    """The daemon answered ``ok: false``; carries the machine code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


class ServiceClient:
    """Talk to a :class:`~repro.service.server.CompileService`."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 7411, timeout: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _connect(self) -> socket.socket:
        try:
            return socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            raise ReproError(
                f"cannot reach compile service at {self.host}:{self.port} "
                f"({exc}); is `repro serve` running?"
            )

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response round trip; raises :class:`ServiceError`
        on ``ok: false`` responses."""
        with self._connect() as sock:
            sock.sendall(protocol.encode_message(payload))
            with sock.makefile("rb") as stream:
                line = stream.readline()
        if not line:
            raise ReproError("compile service closed the connection")
        response = protocol.decode_message(line)
        if not response.get("ok", False):
            raise ServiceError(
                str(response.get("code", "error")),
                str(response.get("error", "service request failed")),
            )
        return response

    # -- op helpers -------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request({"op": "ping"})

    def submit(
        self,
        name: str,
        qasm: str,
        flow: str = "epoc",
        priority: int = 0,
        tenant: str = "default",
        options: Optional[Dict[str, Any]] = None,
    ) -> str:
        """Submit one circuit; returns the job id."""
        response = self.request(
            {
                "op": "submit",
                "name": name,
                "qasm": qasm,
                "flow": flow,
                "priority": priority,
                "tenant": tenant,
                "options": dict(options or {}),
            }
        )
        return response["job"]

    def status(self, job: Optional[str] = None) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"op": "status"}
        if job is not None:
            payload["job"] = job
        return self.request(payload)

    def result(self, job: str) -> Dict[str, Any]:
        return self.request({"op": "result", "job": job})

    def cancel(self, job: str) -> Dict[str, Any]:
        return self.request({"op": "cancel", "job": job})

    def stats(self) -> Dict[str, Any]:
        return self.request({"op": "stats"})

    def shutdown(self) -> Dict[str, Any]:
        return self.request({"op": "shutdown"})

    def events(
        self, job: str, after: int = 0, follow: bool = False
    ) -> Iterator[Dict[str, Any]]:
        """Yield a job's buffered events; with ``follow=True`` keep the
        connection open and stream until the job finishes.  The terminal
        ``{"done": true, ...}`` line is consumed, not yielded."""
        with self._connect() as sock:
            if follow:
                # a followed stream outlives the request timeout by design
                sock.settimeout(None)
            sock.sendall(
                protocol.encode_message(
                    {"op": "events", "job": job, "after": after,
                     "follow": follow}
                )
            )
            with sock.makefile("rb") as stream:
                for line in stream:
                    message = protocol.decode_message(line)
                    if message.get("ok") is False:
                        raise ServiceError(
                            str(message.get("code", "error")),
                            str(message.get("error", "event stream failed")),
                        )
                    if message.get("done"):
                        return
                    yield message

    def wait(
        self, job: str, timeout: Optional[float] = None, poll: float = 0.2
    ) -> Dict[str, Any]:
        """Block until ``job`` reaches a terminal state; returns its
        result view.  Polls status (cheap, local) rather than holding a
        streaming connection."""
        import time

        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        while True:
            view = self.status(job)
            if view["state"] in ("done", "failed", "cancelled", "rejected"):
                return self.result(job)
            if deadline is not None and time.monotonic() > deadline:
                raise ReproError(
                    f"job {job} still {view['state']} after {timeout:g}s"
                )
            time.sleep(poll)

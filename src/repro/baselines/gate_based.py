"""The traditional gate-based pulse flow (paper Figure 3, left path).

Decompose to the native basis ({u3, cx}), then play one pre-calibrated
pulse per gate.  Latency comes from the calibrated duration table and
fidelity from per-gate calibrated error rates — no optimal control at all.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro import obs, telemetry
from repro.config import EPOCConfig
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.transpile import decompose_to_cx_u3
from repro.core.metrics import CompilationReport, esp_fidelity
from repro.pulse.hardware import GateLatencyModel
from repro.pulse.schedule import PulseSchedule
from repro.verify import StageVerifier

__all__ = ["GateBasedFlow"]

logger = telemetry.get_logger("baselines.gate_based")


class GateBasedFlow:
    """Calibrated-pulse-per-gate compilation."""

    def __init__(self, config: Optional[EPOCConfig] = None):
        self.config = config or EPOCConfig()
        self.latency_model = GateLatencyModel(self.config.hardware)

    def compile(
        self, circuit: QuantumCircuit, name: str = "circuit"
    ) -> CompilationReport:
        start = time.perf_counter()
        tracer = telemetry.get_tracer()
        verifier = StageVerifier(
            self.config.verify,
            target_fidelity=self.config.qoc.fidelity_threshold,
            synthesis_threshold=self.config.synthesis_threshold,
        )
        observer = obs.observe_run(
            self.config.obs, circuit=name, method="gate-based"
        )
        with observer, tracer.span(
            "compile", circuit=name, qubits=circuit.num_qubits, method="gate-based"
        ):
            source = circuit.without_pseudo_ops()
            with observer.stage("decompose"), tracer.span("decompose") as span:
                native = decompose_to_cx_u3(source)
                span.set(gates=len(native))
            if verifier.enabled:
                # the only transform this flow applies; calibrated pulses
                # per native gate leave nothing further to re-derive
                verifier.check_circuit_stage(
                    "decompose", source, native, detail="basis decomposition"
                )
            schedule = PulseSchedule(circuit.num_qubits)
            errors: List[float] = []
            hw = self.config.hardware
            with observer.stage("schedule"), tracer.span(
                "schedule", gates=len(native)
            ):
                for gate in native.gates:
                    duration = self.latency_model.duration(gate)
                    schedule.add_interval(gate.qubits, duration, label=gate.name)
                    if gate.num_qubits == 1:
                        errors.append(hw.one_qubit_gate_error)
                    elif gate.num_qubits == 2:
                        errors.append(hw.two_qubit_gate_error)
                    else:
                        errors.append(hw.three_qubit_gate_error)
            logger.info(
                "gate-based: %d native gates, latency %.1f ns",
                len(native),
                schedule.latency,
            )
            verification = verifier.finalize()
        elapsed = time.perf_counter() - start
        report = CompilationReport(
            method="gate-based",
            circuit_name=name,
            num_qubits=circuit.num_qubits,
            schedule=schedule,
            latency_ns=schedule.latency,
            fidelity=esp_fidelity(errors),
            compile_seconds=elapsed,
            pulse_count=len(native),
            stats={
                "native_gates": float(len(native)),
                "native_depth": float(native.depth()),
            },
            verification=verification,
        )
        observer.record(report)
        return report

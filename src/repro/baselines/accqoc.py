"""AccQOC-like baseline (Cheng et al., ISCA 2020).

AccQOC segments the circuit into small uniform subcircuits (two-qubit
slices), builds an *exact-match* pulse database for the slice unitaries,
and orders pulse construction along the minimum spanning tree of a
similarity graph so each QOC run can warm-start from its most similar
already-solved neighbour.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import networkx as nx
import numpy as np

from repro import obs, telemetry
from repro.config import EPOCConfig
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.transpile import decompose_to_cx_u3
from repro.core.metrics import CompilationReport, esp_fidelity
from repro.linalg.unitary import hs_distance
from repro.parallel import ParallelExecutor
from repro.partition.greedy import greedy_partition
from repro.partition.regroup import RegroupedUnitary, blocks_as_unitaries
from repro.pulse.schedule import PulseSchedule
from repro.qoc.library import PulseLibrary, unitary_cache_key
from repro.resilience import FidelityLedger
from repro.verify import StageVerifier
from repro.verify.checks import items_as_circuit

__all__ = ["AccQOCFlow"]


class AccQOCFlow:
    """Fixed two-qubit grouping + exact-match pulse database + MST order."""

    def __init__(
        self,
        config: Optional[EPOCConfig] = None,
        library: Optional[PulseLibrary] = None,
        group_gate_limit: int = 8,
    ):
        self.config = config or EPOCConfig()
        # AccQOC matches unitaries exactly (no global-phase folding);
        # ``library or ...`` would discard an empty caller-supplied
        # library (PulseLibrary defines __len__, so empty is falsy)
        if library is None:
            library = PulseLibrary(
                config=self.config.qoc,
                match_global_phase=False,
                resilience=self.config.resilience,
                racing=self.config.racing,
            )
        self.library = library
        self.group_gate_limit = group_gate_limit

    def compile(
        self, circuit: QuantumCircuit, name: str = "circuit"
    ) -> CompilationReport:
        start = time.perf_counter()
        tracer = telemetry.get_tracer()
        verifier = StageVerifier(
            self.config.verify,
            target_fidelity=self.config.qoc.fidelity_threshold,
            synthesis_threshold=self.config.synthesis_threshold,
        )
        executor = ParallelExecutor.from_config(
            self.config.parallel, self.config.resilience
        )
        observer = obs.observe_run(
            self.config.obs, circuit=name, method="accqoc"
        )
        with executor, observer, tracer.span(
            "compile", circuit=name, qubits=circuit.num_qubits, method="accqoc"
        ):
            source = circuit.without_pseudo_ops()
            with observer.stage("decompose"), tracer.span("decompose"):
                native = decompose_to_cx_u3(source)
            if verifier.enabled:
                verifier.check_circuit_stage(
                    "decompose", source, native, detail="basis decomposition"
                )
            with observer.stage("partition"), tracer.span("partition") as span:
                blocks = greedy_partition(
                    native, qubit_limit=2, gate_limit=self.group_gate_limit
                )
                items = blocks_as_unitaries(blocks)
                span.set(groups=len(items))
            if verifier.enabled:
                # slice unitaries replayed in order must reproduce the
                # decomposed circuit (partition + unitary computation)
                verifier.check_circuit_stage(
                    "partition",
                    native,
                    items_as_circuit(items, circuit.num_qubits),
                    detail="slice reassembly",
                )

            with observer.stage("mst_order"), tracer.span(
                "mst_order", groups=len(items)
            ):
                order = self._mst_order(items)
            # generate pulses in MST order (cache fills along similar unitaries)
            pulses = {}
            # freeze warm-start candidates at stage start so serial and
            # parallel runs seed every search from the same snapshot
            warm_entries = self.library.warm_snapshot()
            with observer.stage("pulse_generation"), tracer.span(
                "pulse_generation", items=len(items), workers=executor.workers
            ):
                if executor.is_parallel:
                    # singleflight keeps one QOC problem per distinct
                    # unitary; the MST ordering only dictated cache-fill
                    # order, which dedup-before-dispatch subsumes
                    batch = self.library.get_pulses(
                        [(items[i].matrix, items[i].qubits) for i in order],
                        executor=executor,
                        warm_entries=warm_entries,
                    )
                    pulses = dict(zip(order, batch))
                else:
                    for position, index in enumerate(order):
                        item = items[index]
                        pulses[index] = self.library.get_pulse(
                            item.matrix, item.qubits, warm_entries=warm_entries
                        )
                        observer.block_progress(
                            "pulse_generation", index, position + 1, len(order)
                        )

            schedule = PulseSchedule(circuit.num_qubits)
            distances: List[float] = []
            ledger = FidelityLedger(
                target_fidelity=self.config.qoc.fidelity_threshold
            )
            for index, item in enumerate(items):
                pulse = pulses[index]
                schedule.add_pulse(pulse, label=f"acc{item.num_qubits}")
                distances.append(pulse.unitary_distance)
                ledger.observe(index, item.qubits, pulse)
                verifier.check_pulse(
                    index,
                    item.qubits,
                    item.matrix,
                    pulse,
                    self.library.hardware_for(item.num_qubits),
                    key=self.library.key_for(item.matrix, item.num_qubits),
                )
            verification = verifier.finalize()

        elapsed = time.perf_counter() - start
        report = CompilationReport(
            method="accqoc",
            circuit_name=name,
            num_qubits=circuit.num_qubits,
            schedule=schedule,
            latency_ns=schedule.latency,
            fidelity=esp_fidelity(distances),
            compile_seconds=elapsed,
            pulse_count=len(items),
            stats={
                "groups": float(len(items)),
                "qoc_items": float(len(items)),
                "unique_qoc_items": float(
                    len({
                        self.library.key_for(item.matrix, item.num_qubits)
                        for item in items
                    })
                ),
                "cache_hits": float(self.library.hits),
                "cache_misses": float(self.library.misses),
                "degraded_blocks": float(len(ledger.entries)),
            },
            degraded_blocks=ledger.entries,
            verification=verification,
        )
        observer.record(report)
        return report

    @staticmethod
    def _mst_order(items: List[RegroupedUnitary]) -> List[int]:
        """Pulse-construction order: BFS over the similarity-graph MST.

        Deduplicates identical unitaries first; the MST over pairwise
        Hilbert-Schmidt distances then dictates construction order, as in
        the AccQOC paper.
        """
        unique: Dict[bytes, int] = {}
        representatives: List[int] = []
        for index, item in enumerate(items):
            key = bytes([item.num_qubits]) + unitary_cache_key(
                item.matrix, global_phase=False
            )
            if key not in unique:
                unique[key] = index
                representatives.append(index)
        if len(representatives) <= 2:
            return list(range(len(items)))

        graph = nx.Graph()
        graph.add_nodes_from(representatives)
        for i, a in enumerate(representatives):
            for b in representatives[i + 1 :]:
                if items[a].dim != items[b].dim:
                    continue
                weight = abs(hs_distance(items[a].matrix, items[b].matrix))
                graph.add_edge(a, b, weight=weight)
        order: List[int] = []
        seen = set()
        for component in nx.connected_components(graph):
            tree = nx.minimum_spanning_tree(graph.subgraph(component))
            root = min(component)
            for node in nx.bfs_tree(tree, root):
                order.append(node)
                seen.add(node)
        order.extend(i for i in representatives if i not in seen)
        # non-representative duplicates resolve through the cache afterwards
        order.extend(i for i in range(len(items)) if i not in set(order))
        return order

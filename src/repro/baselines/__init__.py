"""Comparator flows: gate-based, AccQOC-like and PAQOC-like pipelines."""

from repro.baselines.gate_based import GateBasedFlow
from repro.baselines.accqoc import AccQOCFlow
from repro.baselines.paqoc import PAQOCFlow

__all__ = ["GateBasedFlow", "AccQOCFlow", "PAQOCFlow"]

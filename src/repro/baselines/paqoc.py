"""PAQOC-like baseline (Chen et al., HPCA 2023).

PAQOC augments the basis-gate set with *program-aware* gates: it mines the
program for frequently recurring gate patterns, turns the profitable ones
into custom QOC pulses, and uses criticality analysis to focus pulse
optimization where it shortens the program.  Gates not covered by a custom
pattern keep their calibrated pulses.

Re-implemented from the paper's description: greedy pattern grouping (up
to ``pattern_qubit_limit`` qubits), frequency mining over canonical block
keys, criticality from the weighted circuit DAG, and an exact-match pulse
database (no global-phase folding — that is EPOC's addition).
"""

from __future__ import annotations

import time
from collections import Counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs, telemetry
from repro.config import EPOCConfig
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import CircuitDAG
from repro.circuits.transpile import decompose_to_cx_u3
from repro.core.metrics import CompilationReport, esp_fidelity
from repro.parallel import ParallelExecutor
from repro.partition.block import CircuitBlock
from repro.partition.greedy import greedy_partition
from repro.pulse.hardware import GateLatencyModel
from repro.pulse.schedule import PulseSchedule
from repro.qoc.library import PulseLibrary, unitary_cache_key
from repro.resilience import FidelityLedger
from repro.verify import StageVerifier

__all__ = ["PAQOCFlow"]


class PAQOCFlow:
    """Pattern-mined custom gates + criticality-driven QOC."""

    def __init__(
        self,
        config: Optional[EPOCConfig] = None,
        library: Optional[PulseLibrary] = None,
        pattern_qubit_limit: int = 2,
        pattern_gate_limit: int = 10,
        min_pattern_frequency: int = 2,
        criticality_threshold: float = 0.65,
    ):
        self.config = config or EPOCConfig()
        # ``library or ...`` would discard an empty caller-supplied
        # library (PulseLibrary defines __len__, so empty is falsy)
        if library is None:
            library = PulseLibrary(
                config=self.config.qoc,
                match_global_phase=False,
                resilience=self.config.resilience,
                racing=self.config.racing,
            )
        self.library = library
        self.pattern_qubit_limit = pattern_qubit_limit
        self.pattern_gate_limit = pattern_gate_limit
        self.min_pattern_frequency = min_pattern_frequency
        self.criticality_threshold = criticality_threshold
        self.latency_model = GateLatencyModel(self.config.hardware)

    def compile(
        self, circuit: QuantumCircuit, name: str = "circuit"
    ) -> CompilationReport:
        start = time.perf_counter()
        tracer = telemetry.get_tracer()
        verifier = StageVerifier(
            self.config.verify,
            target_fidelity=self.config.qoc.fidelity_threshold,
            synthesis_threshold=self.config.synthesis_threshold,
        )
        executor = ParallelExecutor.from_config(
            self.config.parallel, self.config.resilience
        )
        observer = obs.observe_run(
            self.config.obs, circuit=name, method="paqoc"
        )
        with executor, observer, tracer.span(
            "compile", circuit=name, qubits=circuit.num_qubits, method="paqoc"
        ):
            source = circuit.without_pseudo_ops()
            with observer.stage("decompose"), tracer.span("decompose"):
                native = decompose_to_cx_u3(source)
            if verifier.enabled:
                verifier.check_circuit_stage(
                    "decompose", source, native, detail="basis decomposition"
                )
            with observer.stage("partition"), tracer.span("partition") as span:
                blocks = greedy_partition(
                    native,
                    qubit_limit=self.pattern_qubit_limit,
                    gate_limit=self.pattern_gate_limit,
                )
                span.set(blocks=len(blocks))

            # -- pattern mining: canonical keys over block contents ----------
            with observer.stage("pattern_mining"), tracer.span(
                "pattern_mining"
            ) as span:
                keys = [self._block_key(block) for block in blocks]
                frequency = Counter(keys)
                span.set(distinct_patterns=len(frequency))

            # -- criticality analysis over the weighted DAG ------------------
            with observer.stage("criticality"), tracer.span("criticality"):
                dag = CircuitDAG(native)
                weights = dag.critical_path_weights(self.latency_model.duration)
                block_criticality = self._block_criticality(native, blocks, weights)

            # decide up front which blocks get a custom QOC pulse so the
            # parallel path can singleflight them in one batch
            custom_blocks = [
                block
                for block, key in zip(blocks, keys)
                if (
                    frequency[key] >= self.min_pattern_frequency
                    or block_criticality[block.index] >= self.criticality_threshold
                )
                and block.num_gates >= 2
            ]
            unitaries = {
                block.index: block.unitary() for block in custom_blocks
            }
            unique_qoc = len({
                self.library.key_for(unitaries[block.index], block.num_qubits)
                for block in custom_blocks
            })

            schedule = PulseSchedule(circuit.num_qubits)
            distances: List[float] = []
            ledger = FidelityLedger(
                target_fidelity=self.config.qoc.fidelity_threshold
            )
            custom_gates = 0
            calibrated_gates = 0
            hw = self.config.hardware
            custom_indices = {block.index for block in custom_blocks}
            prefetched = {}
            # freeze warm-start candidates at stage start so serial and
            # parallel runs seed every search from the same snapshot
            warm_entries = self.library.warm_snapshot()
            with observer.stage("pulse_generation"), tracer.span(
                "pulse_generation", blocks=len(blocks), workers=executor.workers
            ):
                if executor.is_parallel and custom_blocks:
                    batch = self.library.get_pulses(
                        [
                            (unitaries[block.index], block.qubits)
                            for block in custom_blocks
                        ],
                        executor=executor,
                        warm_entries=warm_entries,
                    )
                    prefetched = {
                        block.index: pulse
                        for block, pulse in zip(custom_blocks, batch)
                    }
                for block in blocks:
                    if block.index in custom_indices:
                        pulse = prefetched.get(block.index)
                        if pulse is None:
                            pulse = self.library.get_pulse(
                                unitaries[block.index],
                                block.qubits,
                                warm_entries=warm_entries,
                            )
                        schedule.add_pulse(pulse, label="pattern")
                        distances.append(pulse.unitary_distance)
                        ledger.observe(block.index, block.qubits, pulse)
                        # custom-pattern pulses are the only QOC products
                        # in this flow; calibrated gates have no waveform
                        # to re-derive a propagator from
                        verifier.check_pulse(
                            block.index,
                            block.qubits,
                            unitaries[block.index],
                            pulse,
                            self.library.hardware_for(block.num_qubits),
                            key=self.library.key_for(
                                unitaries[block.index], block.num_qubits
                            ),
                        )
                        custom_gates += 1
                    else:
                        for gate in block.circuit.gates:
                            global_qubits = tuple(
                                block.qubits[q] for q in gate.qubits
                            )
                            duration = self.latency_model.duration(gate)
                            schedule.add_interval(
                                global_qubits, duration, label=gate.name
                            )
                            distances.append(
                                hw.one_qubit_gate_error
                                if gate.num_qubits == 1
                                else hw.two_qubit_gate_error
                            )
                            calibrated_gates += 1
            verification = verifier.finalize()

        elapsed = time.perf_counter() - start
        report = CompilationReport(
            method="paqoc",
            circuit_name=name,
            num_qubits=circuit.num_qubits,
            schedule=schedule,
            latency_ns=schedule.latency,
            fidelity=esp_fidelity(distances),
            compile_seconds=elapsed,
            pulse_count=custom_gates + calibrated_gates,
            stats={
                "custom_pattern_pulses": float(custom_gates),
                "calibrated_gates": float(calibrated_gates),
                "distinct_patterns": float(len(frequency)),
                "qoc_items": float(custom_gates),
                "unique_qoc_items": float(unique_qoc),
                "cache_hits": float(self.library.hits),
                "cache_misses": float(self.library.misses),
                "degraded_blocks": float(len(ledger.entries)),
            },
            degraded_blocks=ledger.entries,
            verification=verification,
        )
        observer.record(report)
        return report

    @staticmethod
    def _block_key(block: CircuitBlock) -> Tuple:
        """Canonical pattern identity: gate names, local wires, rounded
        parameters — what PAQOC's subgraph mining would report."""
        return tuple(
            (gate.name, gate.qubits, tuple(round(p, 6) for p in gate.params))
            for gate in block.circuit.gates
        )

    @staticmethod
    def _block_criticality(
        native: QuantumCircuit,
        blocks: List[CircuitBlock],
        gate_weights: Dict[int, float],
    ) -> Dict[int, float]:
        """Max criticality of any gate inside each block.

        ``native`` carries no pseudo-ops, so the partitioner's
        ``source_indices`` align exactly with the DAG's node indices.
        """
        result: Dict[int, float] = {}
        for block in blocks:
            best = 0.0
            for node in block.source_indices:
                if node in gate_weights:
                    best = max(best, gate_weights[node])
            result[block.index] = best if best > 0.0 else 0.5
        return result

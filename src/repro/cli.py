"""Command-line interface: compile OpenQASM files to pulse schedules.

Usage::

    python -m repro.cli compile circuit.qasm --flow epoc
    python -m repro.cli compile circuit.qasm --flow gate-based --render
    python -m repro.cli compile circuit.qasm --trace t.json --metrics m.json
    python -m repro.cli compile circuit.qasm -j 4            # 4 QOC workers
    python -m repro.cli compile-batch qasm_dir/ --library lib.json -j 4
    python -m repro.cli compile-batch --suite table1 --library lib.json
    python -m repro.cli optimize circuit.qasm          # ZX pass only
    python -m repro.cli info circuit.qasm              # structure report

Flows: ``epoc`` (default), ``epoc-nogroup``, ``gate-based``, ``accqoc``,
``paqoc``.  Every subcommand accepts ``-v``/``--log-level`` and
``--log-json``; ``compile`` additionally takes ``--trace FILE`` (Chrome
trace-event JSON, open in Perfetto) and ``--metrics FILE``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro import telemetry
from repro.baselines import AccQOCFlow, GateBasedFlow, PAQOCFlow
from repro.circuits import QuantumCircuit
from repro.config import (
    EPOCConfig,
    ParallelConfig,
    QOCConfig,
    ResilienceConfig,
    VerifyConfig,
)
from repro.core import EPOCPipeline
from repro.exceptions import ReproError

__all__ = ["main", "build_parser"]


def _logging_parent() -> argparse.ArgumentParser:
    """Shared logging flags, attached to every subcommand."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="increase log verbosity (-v: INFO, -vv: DEBUG)",
    )
    parent.add_argument(
        "--log-level",
        default=None,
        type=str.upper,
        choices=["DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL"],
        metavar="LEVEL",
        help="explicit log level for the repro.* hierarchy (overrides -v)",
    )
    parent.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured JSON log lines instead of text",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="EPOC pulse-generation toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    logging_parent = _logging_parent()

    compile_cmd = sub.add_parser(
        "compile", help="compile a QASM file to pulses", parents=[logging_parent]
    )
    compile_cmd.add_argument("qasm", help="path to an OpenQASM 2.0 file")
    compile_cmd.add_argument(
        "--flow",
        default="epoc",
        choices=["epoc", "epoc-nogroup", "gate-based", "accqoc", "paqoc"],
        help="compilation flow (default: epoc)",
    )
    compile_cmd.add_argument(
        "--qubit-limit", type=int, default=3, help="partition/regroup qubit limit"
    )
    compile_cmd.add_argument(
        "--dt", type=float, default=1.0, help="pulse segment length (ns)"
    )
    compile_cmd.add_argument(
        "--fidelity", type=float, default=0.995, help="per-pulse fidelity target"
    )
    compile_cmd.add_argument(
        "-j",
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for the synthesis/QOC stages "
            "(0 = serial, -1 = all cores; default: $REPRO_WORKERS or serial)"
        ),
    )
    compile_cmd.add_argument(
        "--no-zx", action="store_true", help="skip the ZX optimization stage"
    )
    compile_cmd.add_argument(
        "--render", action="store_true", help="print an ASCII schedule"
    )
    compile_cmd.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a Chrome trace-event JSON (open in Perfetto)",
    )
    compile_cmd.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help="write counters/gauges/histograms as JSON",
    )
    compile_cmd.add_argument(
        "--checkpoint",
        default=None,
        metavar="FILE",
        help=(
            "pulse-library checkpoint path; pulses are flushed here "
            "incrementally during compilation"
        ),
    )
    compile_cmd.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint (skips already-solved pulses)",
    )
    compile_cmd.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="flush the checkpoint every N solved pulses (default: 1)",
    )
    compile_cmd.add_argument(
        "--stage-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "wall-clock budget per compilation stage (synthesis, and each "
            "GRAPE duration search); expired work degrades instead of "
            "running on"
        ),
    )
    compile_cmd.add_argument(
        "--max-retries",
        type=int,
        default=1,
        metavar="N",
        help="reseeded retries per failed QOC/synthesis attempt (default: 1)",
    )
    compile_cmd.add_argument(
        "--strict-qoc",
        action="store_true",
        help=(
            "fail the compile when GRAPE misses the fidelity target instead "
            "of keeping the best-effort pulse and recording the deficit"
        ),
    )
    compile_cmd.add_argument(
        "--verify",
        default=None,
        choices=["off", "warn", "strict"],
        help=(
            "stage-boundary verification: 'warn' measures every stage and "
            "reports violations, 'strict' fails the compile on the first "
            "one (default: $REPRO_VERIFY or off)"
        ),
    )
    compile_cmd.add_argument(
        "--error-budget",
        type=float,
        default=None,
        metavar="X",
        help=(
            "end-to-end accumulated-infidelity budget checked at the end "
            "of a verified compile (default: the run's own per-check "
            "allowance, so an all-checks-pass compile never exceeds it)"
        ),
    )

    batch_cmd = sub.add_parser(
        "compile-batch",
        help="compile a suite of circuits through one shared pulse library",
        parents=[logging_parent],
    )
    batch_cmd.add_argument(
        "inputs",
        nargs="*",
        help="QASM files and/or directories (scanned for *.qasm)",
    )
    batch_cmd.add_argument(
        "--suite",
        default=None,
        metavar="SPEC",
        help=(
            "named workload family (table1, figures, full) or "
            "comma-separated benchmark names (e.g. ghz,qft,grover)"
        ),
    )
    batch_cmd.add_argument(
        "--flow",
        default="epoc",
        choices=["epoc", "epoc-nogroup", "gate-based", "accqoc", "paqoc"],
        help="compilation flow applied to every circuit (default: epoc)",
    )
    batch_cmd.add_argument(
        "--library",
        default=None,
        metavar="FILE",
        help=(
            "shared on-disk pulse library; loaded (merge) before compiling "
            "and re-synced after every circuit under an exclusive file "
            "lock, so concurrent invocations never drop each other's "
            "entries"
        ),
    )
    batch_cmd.add_argument(
        "--journal",
        default=None,
        metavar="FILE",
        help="suite journal recording completed circuits (enables --resume)",
    )
    batch_cmd.add_argument(
        "--resume",
        action="store_true",
        help="skip circuits already completed in --journal",
    )
    batch_cmd.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help=(
            "also flush the shared library every N solved pulses inside a "
            "circuit (locked merge into --library; default: per-circuit "
            "sync only)"
        ),
    )
    batch_cmd.add_argument(
        "--qubit-limit", type=int, default=3, help="partition/regroup qubit limit"
    )
    batch_cmd.add_argument(
        "--dt", type=float, default=1.0, help="pulse segment length (ns)"
    )
    batch_cmd.add_argument(
        "--fidelity", type=float, default=0.995, help="per-pulse fidelity target"
    )
    batch_cmd.add_argument(
        "-j",
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes shared by the whole suite "
            "(0 = serial, -1 = all cores; default: $REPRO_WORKERS or serial)"
        ),
    )
    batch_cmd.add_argument(
        "--no-zx", action="store_true", help="skip the ZX optimization stage"
    )
    batch_cmd.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a Chrome trace-event JSON covering the whole suite",
    )
    batch_cmd.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help="write counters/gauges/histograms as JSON",
    )
    batch_cmd.add_argument(
        "--verify",
        default=None,
        choices=["off", "warn", "strict"],
        help="stage-boundary verification for every circuit in the suite",
    )

    optimize_cmd = sub.add_parser(
        "optimize", help="run only the ZX optimization", parents=[logging_parent]
    )
    optimize_cmd.add_argument("qasm", help="path to an OpenQASM 2.0 file")
    optimize_cmd.add_argument(
        "--emit", action="store_true", help="print the optimized circuit as QASM"
    )

    info_cmd = sub.add_parser(
        "info", help="report circuit structure", parents=[logging_parent]
    )
    info_cmd.add_argument("qasm", help="path to an OpenQASM 2.0 file")
    return parser


def _load(path: str) -> QuantumCircuit:
    with open(path) as fh:
        return QuantumCircuit.from_qasm(fh.read())


def _config(args) -> EPOCConfig:
    stage_timeout = getattr(args, "stage_timeout", None)
    resilience = ResilienceConfig(
        max_retries=getattr(args, "max_retries", 1),
        qoc_timeout_seconds=stage_timeout,
        synthesis_timeout_seconds=stage_timeout,
        degrade_on_qoc_failure=not getattr(args, "strict_qoc", False),
        checkpoint_path=getattr(args, "checkpoint", None),
        checkpoint_every=getattr(args, "checkpoint_every", 1),
        resume=getattr(args, "resume", False),
    )
    return EPOCConfig(
        use_zx=not getattr(args, "no_zx", False),
        partition_qubit_limit=args.qubit_limit,
        regroup_qubit_limit=args.qubit_limit,
        qoc=QOCConfig(dt=args.dt, fidelity_threshold=args.fidelity),
        parallel=ParallelConfig(workers=getattr(args, "workers", None)),
        resilience=resilience,
        verify=VerifyConfig(
            mode=getattr(args, "verify", None),
            error_budget=getattr(args, "error_budget", None),
        ),
    )


def _run_compile(args) -> int:
    circuit = _load(args.qasm)
    config = _config(args)
    if args.flow == "gate-based":
        flow = GateBasedFlow(config)
    elif args.flow == "accqoc":
        flow = AccQOCFlow(config)
    elif args.flow == "paqoc":
        flow = PAQOCFlow(config)
    else:
        flow = EPOCPipeline(config, use_regrouping=args.flow == "epoc")
    if args.trace or args.metrics:
        with telemetry.telemetry_session() as (tracer, registry):
            report = flow.compile(circuit, name=args.qasm)
        if args.trace:
            tracer.export(args.trace)
        if args.metrics:
            registry.export(args.metrics)
    else:
        report = flow.compile(circuit, name=args.qasm)
    print(report.summary_row())
    for key, value in sorted(report.stats.items()):
        print(f"  {key}: {value:g}")
    for entry in report.degraded_blocks:
        print(
            f"  degraded block {entry.index} qubits={list(entry.qubits)}: "
            f"fidelity {entry.achieved_fidelity:.4f} < "
            f"{entry.target_fidelity:.4f} ({entry.reason})",
            file=sys.stderr,
        )
    if report.verification is not None:
        summary = report.verification
        print(
            f"  verification ({summary.mode}): {summary.checks} checks, "
            f"{summary.failed} failed, {summary.skipped} skipped, "
            f"infidelity {summary.total_infidelity:.3e} "
            f"of budget {summary.error_budget:.3e}"
        )
        for record in summary.failures:
            where = f" block {record.index}" if record.index is not None else ""
            print(
                f"  verify FAIL [{record.stage}]{where} "
                f"qubits={list(record.qubits)}: infidelity "
                f"{record.infidelity:.3e} > {record.tolerance:.3e}"
                + (f" ({record.detail})" if record.detail else ""),
                file=sys.stderr,
            )
    if args.render:
        from repro.pulse.render import render_schedule

        print()
        print(render_schedule(report.schedule))
    return 0


def _collect_batch_circuits(args) -> "dict":
    """Gather the suite: QASM files/directories plus named families."""
    import os

    circuits = {}

    def add(name: str, circuit: QuantumCircuit) -> None:
        # stems can collide across directories; disambiguate, never drop
        candidate = name
        serial = 2
        while candidate in circuits:
            candidate = f"{name}#{serial}"
            serial += 1
        circuits[candidate] = circuit

    for raw in args.inputs:
        if os.path.isdir(raw):
            entries = sorted(
                entry
                for entry in os.listdir(raw)
                if entry.endswith(".qasm")
            )
            if not entries:
                raise ReproError(f"directory {raw!r} contains no .qasm files")
            for entry in entries:
                path = os.path.join(raw, entry)
                add(os.path.splitext(entry)[0], _load(path))
        else:
            add(os.path.splitext(os.path.basename(raw))[0], _load(raw))
    if args.suite:
        from repro.workloads import resolve_suite

        for name, circuit in resolve_suite(args.suite).items():
            add(name, circuit)
    if not circuits:
        raise ReproError(
            "compile-batch needs at least one circuit: pass QASM files, "
            "a directory, and/or --suite"
        )
    return circuits


def _batch_config(args) -> EPOCConfig:
    if args.checkpoint_every is not None and not args.library:
        raise ReproError("--checkpoint-every requires --library")
    resilience = ResilienceConfig(
        checkpoint_path=(
            args.library if args.checkpoint_every is not None else None
        ),
        checkpoint_every=args.checkpoint_every or 1,
    )
    return EPOCConfig(
        use_zx=not args.no_zx,
        partition_qubit_limit=args.qubit_limit,
        regroup_qubit_limit=args.qubit_limit,
        qoc=QOCConfig(dt=args.dt, fidelity_threshold=args.fidelity),
        parallel=ParallelConfig(workers=args.workers),
        resilience=resilience,
        verify=VerifyConfig(mode=args.verify),
    )


def _run_compile_batch(args) -> int:
    from repro.batch import BatchCompiler, SharedLibraryStore

    circuits = _collect_batch_circuits(args)
    config = _batch_config(args)
    store = SharedLibraryStore(args.library) if args.library else None
    compiler = BatchCompiler(
        config=config,
        flow=args.flow,
        store=store,
        journal_path=args.journal,
        resume=args.resume,
    )
    if args.trace or args.metrics:
        with telemetry.telemetry_session() as (tracer, registry):
            report = compiler.compile_suite(circuits)
        if args.trace:
            tracer.export(args.trace)
        if args.metrics:
            registry.export(args.metrics)
    else:
        report = compiler.compile_suite(circuits)
    print(report.summary_table())
    return 0


def _run_optimize(args) -> int:
    from repro.zx import optimize_circuit

    circuit = _load(args.qasm)
    result = optimize_circuit(circuit)
    print(
        f"depth {result.depth_before} -> {result.depth_after} "
        f"({result.depth_reduction:.2f}x), {result.rewrites} ZX rewrites, "
        f"used {'ZX pipeline' if result.used_zx_pipeline else 'peephole/original'}"
    )
    if args.emit:
        print(result.circuit.to_qasm())
    return 0


def _run_info(args) -> int:
    from repro.pulse.render import render_circuit

    circuit = _load(args.qasm)
    print(f"qubits : {circuit.num_qubits}")
    print(f"gates  : {len(circuit)}  ({circuit.count_ops()})")
    print(f"depth  : {circuit.depth()}")
    print(f"2q ops : {circuit.two_qubit_count}")
    print(render_circuit(circuit))
    return 0


def main(argv: Optional[list] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    level = args.log_level
    if level is None and args.verbose:
        level = "DEBUG" if args.verbose >= 2 else "INFO"
    telemetry.configure_logging(
        level=level, json_output=True if args.log_json else None
    )
    try:
        if args.command == "compile":
            return _run_compile(args)
        if args.command == "compile-batch":
            return _run_compile_batch(args)
        if args.command == "optimize":
            return _run_optimize(args)
        return _run_info(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())

"""Command-line interface: compile OpenQASM files to pulse schedules.

Usage::

    python -m repro.cli compile circuit.qasm --flow epoc
    python -m repro.cli compile circuit.qasm --flow gate-based --render
    python -m repro.cli compile circuit.qasm --trace t.json --metrics m.json
    python -m repro.cli compile circuit.qasm -j 4            # 4 QOC workers
    python -m repro.cli compile-batch qasm_dir/ --library lib.json -j 4
    python -m repro.cli compile-batch --suite table1 --library lib.json
    python -m repro.cli compile circuit.qasm --progress --ledger
    python -m repro.cli compile circuit.qasm --race    # hedged racing
    python -m repro.cli stats list                     # ledger query
    python -m repro.cli stats compare --against-baseline
    python -m repro.cli stats strategies               # race win rates
    python -m repro.cli optimize circuit.qasm          # ZX pass only
    python -m repro.cli info circuit.qasm              # structure report

Flows: ``epoc`` (default), ``epoc-nogroup``, ``gate-based``, ``accqoc``,
``paqoc``.  Every subcommand accepts ``-v``/``--log-level`` and
``--log-json``; ``compile`` additionally takes ``--trace FILE`` (Chrome
trace-event JSON, open in Perfetto), ``--metrics FILE`` and
``--metrics-prom FILE`` (Prometheus text format).  ``compile`` and
``compile-batch`` share the observability flags ``--progress``,
``--progress-events FILE``, ``--ledger [FILE]`` and ``--label``;
``stats`` queries the resulting run ledger and its ``compare`` exits
with status 3 when a stage regressed (the CI perf gate).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro import telemetry
from repro.baselines import AccQOCFlow, GateBasedFlow, PAQOCFlow
from repro.circuits import QuantumCircuit
from repro.config import (
    EPOCConfig,
    ObsConfig,
    ParallelConfig,
    QOC_KERNELS,
    QOCConfig,
    RACE_MODES,
    RacingConfig,
    ResilienceConfig,
    VerifyConfig,
)
from repro.core import EPOCPipeline
from repro.exceptions import ReproError

__all__ = ["main", "build_parser"]


def _logging_parent() -> argparse.ArgumentParser:
    """Shared logging flags, attached to every subcommand."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="increase log verbosity (-v: INFO, -vv: DEBUG)",
    )
    parent.add_argument(
        "--log-level",
        default=None,
        type=str.upper,
        choices=["DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL"],
        metavar="LEVEL",
        help="explicit log level for the repro.* hierarchy (overrides -v)",
    )
    parent.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured JSON log lines instead of text",
    )
    return parent


def _obs_parent() -> argparse.ArgumentParser:
    """Shared observability flags for ``compile`` and ``compile-batch``."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--progress",
        action="store_true",
        help="render live per-stage/per-block progress on stderr",
    )
    parent.add_argument(
        "--progress-events",
        default=None,
        metavar="FILE",
        help="stream typed progress events to FILE, one JSON object per line",
    )
    parent.add_argument(
        "--ledger",
        nargs="?",
        const=True,
        default=None,
        metavar="FILE",
        help=(
            "record the run in the SQLite run ledger; with no FILE the "
            "path comes from $REPRO_LEDGER or ~/.cache/repro/runs.db"
        ),
    )
    parent.add_argument(
        "--label",
        default=None,
        metavar="TAG",
        help="free-form tag stored on the ledger row",
    )
    parent.add_argument(
        "--metrics-prom",
        default=None,
        metavar="FILE",
        help="write counters/gauges/histograms in Prometheus text format",
    )
    return parent


def _add_qoc_tuning_arguments(cmd: argparse.ArgumentParser) -> None:
    """QOC hot-path knobs shared by ``compile`` and ``compile-batch``."""
    cmd.add_argument(
        "--qoc-kernel",
        default=None,
        choices=list(QOC_KERNELS),
        help=(
            "GRAPE objective kernel: 'fast' (vectorized scan, default) or "
            "'reference' (bitwise-pinned legacy loops)"
        ),
    )
    cmd.add_argument(
        "--no-warm-start",
        action="store_true",
        help="disable nearest-neighbor warm starts from the pulse library",
    )
    cmd.add_argument(
        "--warm-start-distance",
        type=float,
        default=None,
        metavar="D",
        help=(
            "max global-phase-invariant distance for a library entry to "
            "seed a search (default: %(default)s -> config default)"
        ),
    )
    cmd.add_argument(
        "--no-equivalence",
        action="store_true",
        help=(
            "disable equivalence-class cache lookup (transpose/dagger/"
            "reverse/tensor derivation of cached pulses)"
        ),
    )


def _add_racing_arguments(cmd: argparse.ArgumentParser) -> None:
    """Strategy-racing knobs shared by ``compile`` and ``compile-batch``."""
    race = cmd.add_mutually_exclusive_group()
    race.add_argument(
        "--race",
        dest="race",
        action="store_true",
        default=None,
        help=(
            "race synthesis strategies and reseeded GRAPE restarts as "
            "hedged concurrent portfolios (default: $REPRO_RACE, else off)"
        ),
    )
    race.add_argument(
        "--no-race",
        dest="race",
        action="store_false",
        default=None,
        help="force the sequential fallback chains even if $REPRO_RACE is set",
    )
    cmd.add_argument(
        "--hedge-delay",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "delay before each lower-priority racing strategy starts "
            "(default: %(default)s -> config default 0.25s)"
        ),
    )
    cmd.add_argument(
        "--race-mode",
        default=None,
        choices=list(RACE_MODES),
        help=(
            "winner selection: 'deterministic' ranks acceptable results "
            "by strategy priority (bitwise-stable output, default), "
            "'latency' takes the first acceptable finisher"
        ),
    )
    cmd.add_argument(
        "--race-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-strategy wall-clock budget inside a race (default: 30s)",
    )


def _racing_config(args) -> RacingConfig:
    """Build the RacingConfig shared by the compile/compile-batch commands."""
    extra = {}
    hedge_delay = getattr(args, "hedge_delay", None)
    if hedge_delay is not None:
        extra["hedge_delay_seconds"] = hedge_delay
    mode = getattr(args, "race_mode", None)
    if mode is not None:
        extra["mode"] = mode
    timeout = getattr(args, "race_timeout", None)
    if timeout is not None:
        extra["strategy_timeout_seconds"] = timeout
    return RacingConfig(enabled=getattr(args, "race", None), **extra)


def _qoc_config(args) -> QOCConfig:
    """Build the QOCConfig shared by the compile/compile-batch commands."""
    extra = {}
    kernel = getattr(args, "qoc_kernel", None)
    if kernel is not None:
        extra["kernel"] = kernel
    if getattr(args, "no_warm_start", False):
        extra["warm_start"] = False
    distance = getattr(args, "warm_start_distance", None)
    if distance is not None:
        extra["warm_start_max_distance"] = distance
    if getattr(args, "no_equivalence", False):
        extra["equivalence_lookup"] = False
    return QOCConfig(dt=args.dt, fidelity_threshold=args.fidelity, **extra)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="EPOC pulse-generation toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    logging_parent = _logging_parent()
    obs_parent = _obs_parent()

    compile_cmd = sub.add_parser(
        "compile",
        help="compile a QASM file to pulses",
        parents=[logging_parent, obs_parent],
    )
    compile_cmd.add_argument("qasm", help="path to an OpenQASM 2.0 file")
    compile_cmd.add_argument(
        "--flow",
        default="epoc",
        choices=["epoc", "epoc-nogroup", "gate-based", "accqoc", "paqoc"],
        help="compilation flow (default: epoc)",
    )
    compile_cmd.add_argument(
        "--qubit-limit", type=int, default=3, help="partition/regroup qubit limit"
    )
    compile_cmd.add_argument(
        "--dt", type=float, default=1.0, help="pulse segment length (ns)"
    )
    compile_cmd.add_argument(
        "--fidelity", type=float, default=0.995, help="per-pulse fidelity target"
    )
    _add_qoc_tuning_arguments(compile_cmd)
    _add_racing_arguments(compile_cmd)
    compile_cmd.add_argument(
        "-j",
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for the synthesis/QOC stages "
            "(0 = serial, -1 = all cores; default: $REPRO_WORKERS or serial)"
        ),
    )
    compile_cmd.add_argument(
        "--no-zx", action="store_true", help="skip the ZX optimization stage"
    )
    compile_cmd.add_argument(
        "--render", action="store_true", help="print an ASCII schedule"
    )
    compile_cmd.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a Chrome trace-event JSON (open in Perfetto)",
    )
    compile_cmd.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help="write counters/gauges/histograms as JSON",
    )
    compile_cmd.add_argument(
        "--checkpoint",
        default=None,
        metavar="FILE",
        help=(
            "pulse-library checkpoint path; pulses are flushed here "
            "incrementally during compilation"
        ),
    )
    compile_cmd.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint (skips already-solved pulses)",
    )
    compile_cmd.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="flush the checkpoint every N solved pulses (default: 1)",
    )
    compile_cmd.add_argument(
        "--stage-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "wall-clock budget per compilation stage (synthesis, and each "
            "GRAPE duration search); expired work degrades instead of "
            "running on"
        ),
    )
    compile_cmd.add_argument(
        "--max-retries",
        type=int,
        default=1,
        metavar="N",
        help="reseeded retries per failed QOC/synthesis attempt (default: 1)",
    )
    compile_cmd.add_argument(
        "--strict-qoc",
        action="store_true",
        help=(
            "fail the compile when GRAPE misses the fidelity target instead "
            "of keeping the best-effort pulse and recording the deficit"
        ),
    )
    compile_cmd.add_argument(
        "--verify",
        default=None,
        choices=["off", "warn", "strict"],
        help=(
            "stage-boundary verification: 'warn' measures every stage and "
            "reports violations, 'strict' fails the compile on the first "
            "one (default: $REPRO_VERIFY or off)"
        ),
    )
    compile_cmd.add_argument(
        "--error-budget",
        type=float,
        default=None,
        metavar="X",
        help=(
            "end-to-end accumulated-infidelity budget checked at the end "
            "of a verified compile (default: the run's own per-check "
            "allowance, so an all-checks-pass compile never exceeds it)"
        ),
    )

    batch_cmd = sub.add_parser(
        "compile-batch",
        help="compile a suite of circuits through one shared pulse library",
        parents=[logging_parent, obs_parent],
    )
    batch_cmd.add_argument(
        "inputs",
        nargs="*",
        help="QASM files and/or directories (scanned for *.qasm)",
    )
    batch_cmd.add_argument(
        "--suite",
        default=None,
        metavar="SPEC",
        help=(
            "named workload family (table1, figures, full) or "
            "comma-separated benchmark names (e.g. ghz,qft,grover)"
        ),
    )
    batch_cmd.add_argument(
        "--flow",
        default="epoc",
        choices=["epoc", "epoc-nogroup", "gate-based", "accqoc", "paqoc"],
        help="compilation flow applied to every circuit (default: epoc)",
    )
    batch_cmd.add_argument(
        "--library",
        default=None,
        metavar="FILE",
        help=(
            "shared on-disk pulse library; loaded (merge) before compiling "
            "and re-synced after every circuit under an exclusive file "
            "lock, so concurrent invocations never drop each other's "
            "entries"
        ),
    )
    batch_cmd.add_argument(
        "--store-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "how long a --library sync waits for a contended store lock "
            "before failing with the holder's pid (default: "
            "$REPRO_STORE_TIMEOUT or 60s)"
        ),
    )
    batch_cmd.add_argument(
        "--journal",
        default=None,
        metavar="FILE",
        help="suite journal recording completed circuits (enables --resume)",
    )
    batch_cmd.add_argument(
        "--resume",
        action="store_true",
        help="skip circuits already completed in --journal",
    )
    batch_cmd.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help=(
            "also flush the shared library every N solved pulses inside a "
            "circuit (locked merge into --library; default: per-circuit "
            "sync only)"
        ),
    )
    batch_cmd.add_argument(
        "--qubit-limit", type=int, default=3, help="partition/regroup qubit limit"
    )
    batch_cmd.add_argument(
        "--dt", type=float, default=1.0, help="pulse segment length (ns)"
    )
    batch_cmd.add_argument(
        "--fidelity", type=float, default=0.995, help="per-pulse fidelity target"
    )
    _add_qoc_tuning_arguments(batch_cmd)
    _add_racing_arguments(batch_cmd)
    batch_cmd.add_argument(
        "-j",
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes shared by the whole suite "
            "(0 = serial, -1 = all cores; default: $REPRO_WORKERS or serial)"
        ),
    )
    batch_cmd.add_argument(
        "--no-zx", action="store_true", help="skip the ZX optimization stage"
    )
    batch_cmd.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a Chrome trace-event JSON covering the whole suite",
    )
    batch_cmd.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help="write counters/gauges/histograms as JSON",
    )
    batch_cmd.add_argument(
        "--verify",
        default=None,
        choices=["off", "warn", "strict"],
        help="stage-boundary verification for every circuit in the suite",
    )

    stats_cmd = sub.add_parser(
        "stats",
        help="query the run ledger and gate on perf regressions",
        parents=[logging_parent],
    )
    stats_cmd.add_argument(
        "--ledger",
        default=None,
        metavar="FILE",
        dest="ledger_path",
        help="ledger database (default: $REPRO_LEDGER or ~/.cache/repro/runs.db)",
    )
    stats_sub = stats_cmd.add_subparsers(dest="stats_command", required=True)

    stats_list = stats_sub.add_parser("list", help="recent runs, newest first")
    stats_list.add_argument(
        "--limit", type=int, default=20, metavar="N", help="rows to show"
    )
    stats_list.add_argument(
        "--circuit", default=None, help="filter by circuit name"
    )
    stats_list.add_argument(
        "--method", default=None, help="filter by compilation flow"
    )

    stats_show = stats_sub.add_parser(
        "show", help="one run in full (stages, resources, workers)"
    )
    stats_show.add_argument("run_id", type=int, help="ledger run id")

    stats_compare = stats_sub.add_parser(
        "compare",
        help=(
            "diff two runs stage by stage; exits 3 when a stage (or the "
            "wall clock) regressed beyond the threshold"
        ),
    )
    stats_compare.add_argument(
        "run_ids",
        type=int,
        nargs="*",
        metavar="RUN",
        help=(
            "BASE NEW run ids; with one id the other side is the baseline "
            "or the latest run, with none the two most recent runs compare"
        ),
    )
    stats_compare.add_argument(
        "--against-baseline",
        action="store_true",
        help="compare the pinned baseline against NEW (default: latest run)",
    )
    stats_compare.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="X",
        help="relative slowdown tolerated per stage (default: 0.25 = +25%%)",
    )
    stats_compare.add_argument(
        "--min-seconds",
        type=float,
        default=None,
        metavar="S",
        help="absolute slowdown a stage must exceed to count (default: 0.05)",
    )

    stats_strategies = stats_sub.add_parser(
        "strategies",
        help="racing portfolio win rates per block width (see --race)",
    )
    stats_strategies.add_argument(
        "--limit",
        type=int,
        default=200,
        metavar="N",
        help="most recent runs to aggregate (default: %(default)s)",
    )
    stats_strategies.add_argument(
        "--circuit", default=None, help="filter by circuit name"
    )
    stats_strategies.add_argument(
        "--method", default=None, help="filter by compilation flow"
    )

    stats_baseline = stats_sub.add_parser(
        "baseline", help="pin, show or clear the comparison baseline"
    )
    stats_baseline.add_argument(
        "run_id",
        type=int,
        nargs="?",
        default=None,
        help="run id to pin (omit to show the current baseline)",
    )
    stats_baseline.add_argument(
        "--name",
        default="default",
        help="baseline slot name (default: 'default')",
    )
    stats_baseline.add_argument(
        "--clear", action="store_true", help="unpin the named baseline"
    )

    optimize_cmd = sub.add_parser(
        "optimize", help="run only the ZX optimization", parents=[logging_parent]
    )
    optimize_cmd.add_argument("qasm", help="path to an OpenQASM 2.0 file")
    optimize_cmd.add_argument(
        "--emit", action="store_true", help="print the optimized circuit as QASM"
    )

    info_cmd = sub.add_parser(
        "info", help="report circuit structure", parents=[logging_parent]
    )
    info_cmd.add_argument("qasm", help="path to an OpenQASM 2.0 file")

    library_cmd = sub.add_parser(
        "library",
        help="inspect and convert pulse-library files (JSON <-> SQLite)",
        parents=[logging_parent],
    )
    library_sub = library_cmd.add_subparsers(
        dest="library_command", required=True
    )

    library_info = library_sub.add_parser(
        "info", help="format, schema, key mode and per-width entry counts"
    )
    library_info.add_argument("library", help="library file (.json or .db)")

    library_import = library_sub.add_parser(
        "import",
        help=(
            "merge SRC's entries into DEST (created if missing); formats "
            "are autodetected, so this converts JSON->SQLite and back"
        ),
    )
    library_import.add_argument("src", help="source library (.json or .db)")
    library_import.add_argument(
        "dest", help="destination library (.json or .db)"
    )

    library_export = library_sub.add_parser(
        "export",
        help=(
            "write DEST as a fresh canonical copy of SRC (DEST is "
            "replaced); canonical JSON is the interchange format and a "
            "JSON->SQLite->JSON round trip is bitwise-identical"
        ),
    )
    library_export.add_argument("src", help="source library (.json or .db)")
    library_export.add_argument(
        "dest", help="destination library (.json or .db)"
    )

    serve_cmd = sub.add_parser(
        "serve",
        help=(
            "run the resident compile daemon: one warm pulse library "
            "serving queued jobs over a local socket"
        ),
        parents=[logging_parent],
    )
    serve_cmd.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: %(default)s)"
    )
    serve_cmd.add_argument(
        "--port",
        type=int,
        default=7411,
        help="bind port; 0 picks an ephemeral one (default: %(default)s)",
    )
    serve_cmd.add_argument(
        "--library",
        default=None,
        metavar="FILE",
        help=(
            "on-disk pulse library (.json or .db) warmed at startup and "
            "re-synced after every job and on drain"
        ),
    )
    serve_cmd.add_argument(
        "--store-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "how long a --library sync waits for a contended store lock "
            "(default: $REPRO_STORE_TIMEOUT or 60s)"
        ),
    )
    serve_cmd.add_argument(
        "-j",
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help=(
            "worker processes in the shared executor jobs borrow "
            "(0 = serial; default: %(default)s)"
        ),
    )
    serve_cmd.add_argument(
        "--max-jobs",
        type=int,
        default=2,
        metavar="N",
        help="concurrent compilations (runner threads; default: %(default)s)",
    )
    serve_cmd.add_argument(
        "--jobs-per-minute",
        type=int,
        default=0,
        metavar="N",
        help="per-tenant submission rate limit (0 = unlimited)",
    )
    serve_cmd.add_argument(
        "--max-pending",
        type=int,
        default=0,
        metavar="N",
        help="per-tenant queued-job limit (0 = unlimited)",
    )
    serve_cmd.add_argument(
        "--max-running-per-tenant",
        type=int,
        default=0,
        metavar="N",
        help="per-tenant concurrent-job limit (0 = unlimited)",
    )
    serve_cmd.add_argument(
        "--ledger",
        nargs="?",
        const=True,
        default=None,
        metavar="FILE",
        help=(
            "record every job (and every quota rejection) in the run "
            "ledger; with no FILE the path comes from $REPRO_LEDGER"
        ),
    )
    serve_cmd.add_argument(
        "--drain-grace",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help=(
            "how long SIGTERM waits for cancelled jobs to unwind before "
            "the final library sync (default: %(default)ss)"
        ),
    )

    service_parent = argparse.ArgumentParser(add_help=False)
    service_parent.add_argument(
        "--host", default="127.0.0.1", help="daemon address (default: %(default)s)"
    )
    service_parent.add_argument(
        "--port", type=int, default=7411, help="daemon port (default: %(default)s)"
    )
    service_parent.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="per-request socket timeout (default: %(default)ss)",
    )

    submit_cmd = sub.add_parser(
        "submit",
        help="submit a QASM file to a running `repro serve` daemon",
        parents=[logging_parent, service_parent],
    )
    submit_cmd.add_argument("qasm", help="path to an OpenQASM 2.0 file")
    submit_cmd.add_argument(
        "--name",
        default=None,
        metavar="NAME",
        help="job/circuit name (default: the QASM path)",
    )
    submit_cmd.add_argument(
        "--flow",
        default="epoc",
        choices=["epoc", "epoc-nogroup", "gate-based", "accqoc", "paqoc"],
        help="compilation flow (default: epoc)",
    )
    submit_cmd.add_argument(
        "--priority",
        type=int,
        default=0,
        metavar="N",
        help="queue priority; lower runs first (default: %(default)s)",
    )
    submit_cmd.add_argument(
        "--tenant",
        default="default",
        metavar="NAME",
        help="quota-accounting tenant (default: %(default)s)",
    )
    submit_cmd.add_argument(
        "--qubit-limit", type=int, default=3, help="partition/regroup qubit limit"
    )
    submit_cmd.add_argument(
        "--dt", type=float, default=1.0, help="pulse segment length (ns)"
    )
    submit_cmd.add_argument(
        "--fidelity", type=float, default=0.995, help="per-pulse fidelity target"
    )
    submit_cmd.add_argument(
        "--no-zx", action="store_true", help="skip the ZX optimization stage"
    )
    submit_cmd.add_argument(
        "--checkpoint",
        default=None,
        metavar="FILE",
        help=(
            "server-side pulse-library checkpoint path (same semantics as "
            "`repro compile --checkpoint`, flushed by the daemon)"
        ),
    )
    submit_cmd.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="flush the checkpoint every N solved pulses (default: 1)",
    )
    submit_cmd.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint (skips already-solved pulses)",
    )
    submit_cmd.add_argument(
        "--wait",
        action="store_true",
        help="block until the job finishes and print its result",
    )
    submit_cmd.add_argument(
        "--follow",
        action="store_true",
        help=(
            "stream the job's progress events to stdout while it runs "
            "(implies --wait)"
        ),
    )

    status_cmd = sub.add_parser(
        "status",
        help="list a daemon's jobs, or show one job in detail",
        parents=[logging_parent, service_parent],
    )
    status_cmd.add_argument(
        "job", nargs="?", default=None, help="job id (omit to list all jobs)"
    )
    status_cmd.add_argument(
        "--events",
        action="store_true",
        help="also print the job's buffered progress events",
    )

    cancel_cmd = sub.add_parser(
        "cancel",
        help="cancel a queued or running daemon job",
        parents=[logging_parent, service_parent],
    )
    cancel_cmd.add_argument("job", help="job id to cancel")
    return parser


def _load(path: str) -> QuantumCircuit:
    with open(path) as fh:
        return QuantumCircuit.from_qasm(fh.read())


def _obs_config(args) -> ObsConfig:
    ledger = getattr(args, "ledger", None)
    return ObsConfig(
        progress=getattr(args, "progress", False),
        events_path=getattr(args, "progress_events", None),
        # --ledger alone enables recording (path from env/default);
        # --ledger FILE also pins the database; absent keeps the env
        # fallback ($REPRO_LEDGER) working
        ledger=True if ledger else None,
        ledger_path=ledger if isinstance(ledger, str) else None,
        label=getattr(args, "label", None),
    )


def _config(args) -> EPOCConfig:
    stage_timeout = getattr(args, "stage_timeout", None)
    resilience = ResilienceConfig(
        max_retries=getattr(args, "max_retries", 1),
        qoc_timeout_seconds=stage_timeout,
        synthesis_timeout_seconds=stage_timeout,
        degrade_on_qoc_failure=not getattr(args, "strict_qoc", False),
        checkpoint_path=getattr(args, "checkpoint", None),
        checkpoint_every=getattr(args, "checkpoint_every", 1),
        resume=getattr(args, "resume", False),
    )
    return EPOCConfig(
        use_zx=not getattr(args, "no_zx", False),
        partition_qubit_limit=args.qubit_limit,
        regroup_qubit_limit=args.qubit_limit,
        qoc=_qoc_config(args),
        parallel=ParallelConfig(workers=getattr(args, "workers", None)),
        resilience=resilience,
        racing=_racing_config(args),
        verify=VerifyConfig(
            mode=getattr(args, "verify", None),
            error_budget=getattr(args, "error_budget", None),
        ),
        obs=_obs_config(args),
    )


def _run_compile(args) -> int:
    circuit = _load(args.qasm)
    config = _config(args)
    if args.flow == "gate-based":
        flow = GateBasedFlow(config)
    elif args.flow == "accqoc":
        flow = AccQOCFlow(config)
    elif args.flow == "paqoc":
        flow = PAQOCFlow(config)
    else:
        flow = EPOCPipeline(config, use_regrouping=args.flow == "epoc")
    if args.trace or args.metrics or args.metrics_prom:
        with telemetry.telemetry_session() as (tracer, registry):
            report = flow.compile(circuit, name=args.qasm)
        if args.trace:
            tracer.export(args.trace)
        if args.metrics:
            registry.export(args.metrics)
        if args.metrics_prom:
            with open(args.metrics_prom, "w") as fh:
                fh.write(registry.to_prometheus())
    else:
        report = flow.compile(circuit, name=args.qasm)
    print(report.summary_row())
    for key, value in sorted(report.stats.items()):
        print(f"  {key}: {value:g}")
    for entry in report.degraded_blocks:
        print(
            f"  degraded block {entry.index} qubits={list(entry.qubits)}: "
            f"fidelity {entry.achieved_fidelity:.4f} < "
            f"{entry.target_fidelity:.4f} ({entry.reason})",
            file=sys.stderr,
        )
    if report.verification is not None:
        summary = report.verification
        print(
            f"  verification ({summary.mode}): {summary.checks} checks, "
            f"{summary.failed} failed, {summary.skipped} skipped, "
            f"infidelity {summary.total_infidelity:.3e} "
            f"of budget {summary.error_budget:.3e}"
        )
        for record in summary.failures:
            where = f" block {record.index}" if record.index is not None else ""
            print(
                f"  verify FAIL [{record.stage}]{where} "
                f"qubits={list(record.qubits)}: infidelity "
                f"{record.infidelity:.3e} > {record.tolerance:.3e}"
                + (f" ({record.detail})" if record.detail else ""),
                file=sys.stderr,
            )
    if args.render:
        from repro.pulse.render import render_schedule

        print()
        print(render_schedule(report.schedule))
    return 0


def _collect_batch_circuits(args) -> "dict":
    """Gather the suite: QASM files/directories plus named families."""
    import os

    circuits = {}

    def add(name: str, circuit: QuantumCircuit) -> None:
        # stems can collide across directories; disambiguate, never drop
        candidate = name
        serial = 2
        while candidate in circuits:
            candidate = f"{name}#{serial}"
            serial += 1
        circuits[candidate] = circuit

    for raw in args.inputs:
        if os.path.isdir(raw):
            entries = sorted(
                entry
                for entry in os.listdir(raw)
                if entry.endswith(".qasm")
            )
            if not entries:
                raise ReproError(f"directory {raw!r} contains no .qasm files")
            for entry in entries:
                path = os.path.join(raw, entry)
                add(os.path.splitext(entry)[0], _load(path))
        else:
            add(os.path.splitext(os.path.basename(raw))[0], _load(raw))
    if args.suite:
        from repro.workloads import resolve_suite

        for name, circuit in resolve_suite(args.suite).items():
            add(name, circuit)
    if not circuits:
        raise ReproError(
            "compile-batch needs at least one circuit: pass QASM files, "
            "a directory, and/or --suite"
        )
    return circuits


def _batch_config(args) -> EPOCConfig:
    if args.checkpoint_every is not None and not args.library:
        raise ReproError("--checkpoint-every requires --library")
    resilience = ResilienceConfig(
        checkpoint_path=(
            args.library if args.checkpoint_every is not None else None
        ),
        checkpoint_every=args.checkpoint_every or 1,
    )
    return EPOCConfig(
        use_zx=not args.no_zx,
        partition_qubit_limit=args.qubit_limit,
        regroup_qubit_limit=args.qubit_limit,
        qoc=_qoc_config(args),
        parallel=ParallelConfig(workers=args.workers),
        resilience=resilience,
        racing=_racing_config(args),
        verify=VerifyConfig(mode=args.verify),
        obs=_obs_config(args),
    )


def _run_compile_batch(args) -> int:
    from repro.batch import BatchCompiler
    from repro.db import open_store

    circuits = _collect_batch_circuits(args)
    config = _batch_config(args)
    # the store backend follows the file: SQLite databases (by header,
    # or by .db/.sqlite extension for new files) get the transactional
    # upsert store, everything else the JSON load-merge-save store
    store = (
        open_store(args.library, timeout_seconds=args.store_timeout)
        if args.library
        else None
    )
    compiler = BatchCompiler(
        config=config,
        flow=args.flow,
        store=store,
        journal_path=args.journal,
        resume=args.resume,
    )
    if args.trace or args.metrics or args.metrics_prom:
        with telemetry.telemetry_session() as (tracer, registry):
            report = compiler.compile_suite(circuits)
        if args.trace:
            tracer.export(args.trace)
        if args.metrics:
            registry.export(args.metrics)
        if args.metrics_prom:
            with open(args.metrics_prom, "w") as fh:
                fh.write(registry.to_prometheus())
    else:
        report = compiler.compile_suite(circuits)
    print(report.summary_table())
    return 0


def _run_stats(args) -> int:
    from repro import obs

    ledger = obs.RunLedger(args.ledger_path)
    if args.stats_command == "list":
        records = ledger.runs(
            limit=args.limit, circuit=args.circuit, method=args.method
        )
        print(obs.format_run_table(records))
        return 0
    if args.stats_command == "show":
        print(obs.format_run(ledger.run(args.run_id)))
        return 0
    if args.stats_command == "strategies":
        records = ledger.runs(
            limit=args.limit, circuit=args.circuit, method=args.method
        )
        print(obs.format_strategies(obs.aggregate_strategies(records)))
        return 0
    if args.stats_command == "baseline":
        if args.clear:
            existed = ledger.clear_baseline(args.name)
            print(
                f"baseline {args.name!r} cleared"
                if existed
                else f"no baseline {args.name!r} to clear"
            )
            return 0
        if args.run_id is not None:
            ledger.set_baseline(args.run_id, name=args.name)
            print(f"baseline {args.name!r} -> run {args.run_id}")
            return 0
        record = ledger.baseline(args.name)
        if record is None:
            print(f"no baseline {args.name!r} pinned")
            return 1
        print(obs.format_run(record))
        return 0
    # compare
    base, new = _compare_records(obs, ledger, args)
    result = obs.compare_runs(
        base,
        new,
        threshold=(
            args.threshold if args.threshold is not None else 0.25
        ),
        min_seconds=(
            args.min_seconds if args.min_seconds is not None else 0.05
        ),
    )
    print(obs.format_compare(result))
    return obs.REGRESSION_EXIT_CODE if result.regressed else 0


def _compare_records(obs, ledger, args):
    """Resolve ``repro stats compare``'s (base, new) run records."""
    ids = list(args.run_ids)
    if len(ids) > 2:
        raise ReproError("stats compare takes at most two run ids")
    if args.against_baseline:
        base = ledger.baseline()
        if base is None:
            raise ReproError(
                "no baseline pinned; run 'repro stats baseline <id>' first"
            )
        if len(ids) == 2:
            raise ReproError(
                "--against-baseline supplies BASE; pass at most one run id"
            )
        new = ledger.run(ids[0]) if ids else _latest_run(ledger)
        return base, new
    if len(ids) == 2:
        return ledger.run(ids[0]), ledger.run(ids[1])
    if len(ids) == 1:
        raise ReproError(
            "stats compare needs two run ids (or --against-baseline)"
        )
    recent = ledger.runs(limit=2)
    if len(recent) < 2:
        raise ReproError("the ledger holds fewer than two runs to compare")
    # runs() is newest-first: the older run is the base
    return recent[1], recent[0]


def _latest_run(ledger):
    recent = ledger.runs(limit=1)
    if not recent:
        raise ReproError("the ledger is empty")
    return recent[0]


def _run_optimize(args) -> int:
    from repro.zx import optimize_circuit

    circuit = _load(args.qasm)
    result = optimize_circuit(circuit)
    print(
        f"depth {result.depth_before} -> {result.depth_after} "
        f"({result.depth_reduction:.2f}x), {result.rewrites} ZX rewrites, "
        f"used {'ZX pipeline' if result.used_zx_pipeline else 'peephole/original'}"
    )
    if args.emit:
        print(result.circuit.to_qasm())
    return 0


def _run_info(args) -> int:
    from repro.pulse.render import render_circuit

    circuit = _load(args.qasm)
    print(f"qubits : {circuit.num_qubits}")
    print(f"gates  : {len(circuit)}  ({circuit.count_ops()})")
    print(f"depth  : {circuit.depth()}")
    print(f"2q ops : {circuit.two_qubit_count}")
    print(render_circuit(circuit))
    return 0


def _library_mode(path: str):
    """``(is_sqlite, match_global_phase)`` for an existing library file."""
    import json

    from repro.db import SqliteLibraryStore, is_sqlite_path
    from repro.exceptions import QOCError

    if is_sqlite_path(path):
        meta = SqliteLibraryStore(path).meta()
        return True, meta.get("match_global_phase", "1") == "1"
    with open(path) as fh:
        try:
            payload = json.load(fh)
        except ValueError as exc:
            raise QOCError(f"library file {path} is not valid JSON: {exc}")
    if not isinstance(payload, dict):
        raise QOCError(f"library file {path} is not a library payload")
    return False, bool(payload.get("match_global_phase"))


def _read_library(path: str):
    """Load any library file (JSON or SQLite) into a fresh PulseLibrary."""
    from repro.db import SqliteLibraryStore
    from repro.qoc.library import PulseLibrary

    is_sqlite, mode = _library_mode(path)
    library = PulseLibrary(match_global_phase=mode)
    if is_sqlite:
        SqliteLibraryStore(path).pull(library)
    else:
        library.load(path)
    return library


def _write_library(library, path: str, merge: bool) -> None:
    """Write ``library`` to ``path`` in the format the path selects.

    ``merge=True`` (import) folds entries into an existing destination;
    ``merge=False`` (export) replaces it with a canonical fresh copy.
    """
    import os

    from repro.db import SqliteLibraryStore, is_sqlite_path
    from repro.exceptions import QOCError

    if os.path.exists(path):
        if merge:
            _, dest_mode = _library_mode(path)
            if dest_mode != library.match_global_phase:
                raise QOCError(
                    "source and destination libraries use different "
                    "cache-key modes; refusing to merge"
                )
        else:
            os.unlink(path)
            # a stale WAL/novel journal must not resurrect old rows
            for sidecar in (path + "-wal", path + "-shm"):
                if os.path.exists(sidecar):
                    os.unlink(sidecar)
    if is_sqlite_path(path):
        # sync() both folds existing rows into the library and publishes
        # the union; for export the file was just removed, so this
        # writes a fresh canonical database
        SqliteLibraryStore(path).sync(library)
    else:
        if merge and os.path.exists(path):
            library.load(path)
        library.save(path)


def _run_library(args) -> int:
    from repro.db import is_sqlite_path

    if args.library_command == "info":
        from repro.db import SqliteLibraryStore

        path = args.library
        is_sqlite, mode = _library_mode(path)
        library = _read_library(path)
        widths: dict = {}
        for key in library.entries():
            widths[key[0]] = widths.get(key[0], 0) + 1
        print(f"format : {'sqlite' if is_sqlite else 'json'}")
        if is_sqlite:
            meta = SqliteLibraryStore(path).meta()
            print(f"schema : db={meta.get('schema_version', '?')} "
                  f"library={meta.get('library_schema', '?')}")
        print(f"keys   : {'global-phase' if mode else 'exact'}")
        print(f"entries: {len(library)}")
        for width in sorted(widths):
            print(f"  {width}-qubit: {widths[width]}")
        return 0

    # import / export
    library = _read_library(args.src)
    merge = args.library_command == "import"
    _write_library(library, args.dest, merge=merge)
    verb = "merged" if merge else "exported"
    print(
        f"{verb} {len(library)} entries: {args.src} -> {args.dest} "
        f"({'sqlite' if is_sqlite_path(args.dest) else 'json'})"
    )
    return 0


def _run_serve(args) -> int:
    # late import: the service pulls in asyncio plumbing the other
    # commands never need
    from repro.service import CompileService, QuotaPolicy

    service = CompileService(
        host=args.host,
        port=args.port,
        library_path=args.library,
        store_timeout=args.store_timeout,
        workers=args.workers,
        max_jobs=args.max_jobs,
        quota=QuotaPolicy(
            jobs_per_minute=args.jobs_per_minute,
            max_pending=args.max_pending,
            max_running_per_tenant=args.max_running_per_tenant,
        ),
        ledger=bool(args.ledger),
        ledger_path=args.ledger if isinstance(args.ledger, str) else None,
        drain_grace_seconds=args.drain_grace,
    )
    service.serve_forever()
    return 0


def _service_client(args):
    from repro.service import ServiceClient

    return ServiceClient(host=args.host, port=args.port, timeout=args.timeout)


def _print_job_result(result: dict) -> int:
    state = result["state"]
    if state == "done":
        print(result["result"]["summary"])
        return 0
    print(f"job {result['job']} {state}: {result.get('error', '')}",
          file=sys.stderr)
    return 1


def _run_submit(args) -> int:
    import json

    client = _service_client(args)
    with open(args.qasm) as fh:
        qasm = fh.read()
    options = {
        "qubit_limit": args.qubit_limit,
        "dt": args.dt,
        "fidelity": args.fidelity,
    }
    if args.no_zx:
        options["no_zx"] = True
    if args.checkpoint:
        options["checkpoint"] = args.checkpoint
        options["checkpoint_every"] = args.checkpoint_every
        if args.resume:
            options["resume"] = True
    job = client.submit(
        name=args.name or args.qasm,
        qasm=qasm,
        flow=args.flow,
        priority=args.priority,
        tenant=args.tenant,
        options=options,
    )
    if args.follow:
        for event in client.events(job, follow=True):
            print(json.dumps(event, sort_keys=True))
        return _print_job_result(client.result(job))
    if args.wait:
        return _print_job_result(client.wait(job))
    print(job)
    return 0


def _run_status(args) -> int:
    import json

    client = _service_client(args)
    if args.job is None:
        jobs = client.status()["jobs"]
        if not jobs:
            print("no jobs")
            return 0
        for view in jobs:
            print(
                f"{view['job']}  {view['state']:<9}  "
                f"prio={view['priority']:<3} tenant={view['tenant']:<10} "
                f"{view['name']}"
            )
        return 0
    view = client.status(args.job)
    for key in (
        "job", "name", "flow", "tenant", "priority", "state",
        "created_at", "started_at", "finished_at", "events",
    ):
        print(f"{key:<12}: {view.get(key)}")
    if view.get("error"):
        print(f"{'error':<12}: {view['error']}")
    if args.events:
        for event in client.events(args.job):
            print(json.dumps(event, sort_keys=True))
    return 0


def _run_cancel(args) -> int:
    response = _service_client(args).cancel(args.job)
    print(f"{response['job']} -> {response['state']}")
    return 0


def main(argv: Optional[list] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    level = args.log_level
    if level is None and args.verbose:
        level = "DEBUG" if args.verbose >= 2 else "INFO"
    telemetry.configure_logging(
        level=level, json_output=True if args.log_json else None
    )
    try:
        if args.command == "compile":
            return _run_compile(args)
        if args.command == "compile-batch":
            return _run_compile_batch(args)
        if args.command == "stats":
            return _run_stats(args)
        if args.command == "optimize":
            return _run_optimize(args)
        if args.command == "library":
            return _run_library(args)
        if args.command == "serve":
            return _run_serve(args)
        if args.command == "submit":
            return _run_submit(args)
        if args.command == "status":
            return _run_status(args)
        if args.command == "cancel":
            return _run_cancel(args)
        return _run_info(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())

"""The batch compilation engine: one shared library, many circuits.

The paper's pulse library is a cross-program artifact — it is built once
per hardware calibration and amortized across every circuit compiled
against that calibration.  :class:`BatchCompiler` is the engine that
realizes this at suite scale: every circuit in the batch compiles through
a **single shared** :class:`~repro.qoc.library.PulseLibrary`, so the
singleflight deduplication that already collapses duplicate unitaries
*within* a circuit now extends *across* circuit boundaries — a unitary
appearing in five programs costs one GRAPE search.

Layered on the prior subsystems:

* one :class:`~repro.parallel.ParallelExecutor` spans the whole suite, so
  circuits x blocks share a worker pool instead of paying pool setup per
  circuit;
* a :class:`~repro.batch.store.SharedLibraryStore` (optional) persists
  the library across invocations and processes with a locked
  load-merge-save protocol — the store is pulled once at batch start and
  synced after every circuit;
* a :class:`~repro.batch.journal.SuiteJournal` (optional) records each
  completed circuit so a killed batch resumes where it stopped, with the
  finished rows reconstructed into the aggregate report;
* batch-level telemetry: a ``compile_batch`` span wrapping the
  per-circuit ``compile`` spans, plus ``batch.*`` metrics.

The aggregate :class:`BatchReport` quantifies what sharing bought: its
``dedup_savings`` is the number of GRAPE searches a per-circuit compile
of the same suite would have paid minus the searches this batch actually
ran.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro import obs, telemetry
from repro.baselines import AccQOCFlow, GateBasedFlow, PAQOCFlow
from repro.circuits.circuit import QuantumCircuit
from repro.config import EPOCConfig
from repro.core.metrics import CompilationReport
from repro.core.pipeline import EPOCPipeline
from repro.exceptions import ReproError
from repro.parallel import ParallelExecutor
from repro.qoc.library import PulseLibrary
from repro.resilience.journal import config_fingerprint
from repro.batch.journal import SuiteJournal
from repro.batch.store import SharedLibraryStore

if False:  # typing only — Union of the two store backends
    from typing import Union

    from repro.db.store import SqliteLibraryStore

    LibraryStore = Union[SharedLibraryStore, SqliteLibraryStore]

__all__ = ["BatchCompiler", "BatchReport", "CircuitOutcome", "BATCH_FLOWS"]

logger = telemetry.get_logger("batch.engine")

#: flow names accepted by the batch engine (mirrors the CLI choices).
BATCH_FLOWS = ("epoc", "epoc-nogroup", "accqoc", "paqoc", "gate-based")

#: per-circuit summary statistics journaled for resume.
_STAT_KEYS = (
    "latency_ns",
    "fidelity",
    "compile_seconds",
    "pulse_count",
    "cache_hits",
    "cache_misses",
    "qoc_items",
    "unique_qoc_items",
    "degraded_blocks",
)


@dataclass(frozen=True)
class CircuitOutcome:
    """One suite circuit's result, live or reconstructed from a journal."""

    name: str
    method: str
    latency_ns: float
    fidelity: float
    compile_seconds: float
    pulse_count: int
    #: library hits/misses attributable to *this* circuit (deltas against
    #: the shared library's counters, not the cumulative totals).
    cache_hits: int
    cache_misses: int
    #: QOC work items this circuit posed, and how many were unique keys.
    qoc_items: int
    unique_qoc_items: int
    degraded_blocks: int = 0
    #: True when the row was reconstructed from a suite journal instead
    #: of compiled in this invocation.
    resumed: bool = False
    #: the full report for circuits compiled in this invocation.
    report: Optional[CompilationReport] = None

    @property
    def hit_rate(self) -> Optional[float]:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else None

    def stats_dict(self) -> dict:
        return {key: getattr(self, key) for key in _STAT_KEYS}

    @classmethod
    def from_journal(cls, record: dict) -> "CircuitOutcome":
        stats = record.get("stats", {})
        return cls(
            name=str(record.get("name", "?")),
            method=str(record.get("method", "?")),
            latency_ns=float(stats.get("latency_ns", 0.0)),
            fidelity=float(stats.get("fidelity", 0.0)),
            compile_seconds=float(stats.get("compile_seconds", 0.0)),
            pulse_count=int(stats.get("pulse_count", 0)),
            cache_hits=int(stats.get("cache_hits", 0)),
            cache_misses=int(stats.get("cache_misses", 0)),
            qoc_items=int(stats.get("qoc_items", 0)),
            unique_qoc_items=int(stats.get("unique_qoc_items", 0)),
            degraded_blocks=int(stats.get("degraded_blocks", 0)),
            resumed=True,
        )

    def summary_row(self) -> str:
        rate = self.hit_rate
        cache = f"{100.0 * rate:5.1f}%" if rate is not None else "   --"
        qoc = (
            f"{self.unique_qoc_items}/{self.qoc_items}"
            if self.qoc_items
            else "--"
        )
        flags = "  resumed" if self.resumed else ""
        if self.degraded_blocks:
            flags += f"  degraded={self.degraded_blocks}"
        return (
            f"{self.name:<12} {self.method:<12} "
            f"{self.latency_ns:>10.1f} ns  fidelity={self.fidelity:.4f}  "
            f"compile={self.compile_seconds:.2f}s  pulses={self.pulse_count}  "
            f"cache={cache}  qoc={qoc}{flags}"
        )


@dataclass
class BatchReport:
    """Aggregate result of one batch compilation."""

    outcomes: List[CircuitOutcome] = field(default_factory=list)
    #: GRAPE duration searches this invocation actually ran.
    grape_searches: int = 0
    #: searches a per-circuit compile of the same (non-resumed) circuits
    #: would have paid, minus ``grape_searches``.
    dedup_savings: int = 0
    #: shared-library size when the batch finished.
    library_entries: int = 0
    #: entries preloaded from the on-disk store before compiling.
    store_loaded: int = 0
    #: searches seeded from a near-neighbor library entry.
    warm_starts: int = 0
    #: misses served by equivalence-class derivation (transpose/dagger/
    #: reverse/tensor) instead of a GRAPE search.
    equiv_hits: int = 0
    wall_seconds: float = 0.0

    @property
    def circuits(self) -> int:
        return len(self.outcomes)

    @property
    def resumed_circuits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.resumed)

    @property
    def cache_hits(self) -> int:
        return sum(o.cache_hits for o in self.outcomes if not o.resumed)

    @property
    def cache_misses(self) -> int:
        return sum(o.cache_misses for o in self.outcomes if not o.resumed)

    @property
    def aggregate_hit_rate(self) -> Optional[float]:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else None

    def summary_table(self) -> str:
        """Per-circuit rows plus a suite footer, ready to print."""
        lines = [outcome.summary_row() for outcome in self.outcomes]
        rate = self.aggregate_hit_rate
        cache = f"{100.0 * rate:.1f}%" if rate is not None else "--"
        resumed = (
            f" ({self.resumed_circuits} resumed)" if self.resumed_circuits else ""
        )
        store = (
            f"  store_loaded={self.store_loaded}" if self.store_loaded else ""
        )
        warm = f"  warm_starts={self.warm_starts}" if self.warm_starts else ""
        equiv = f"  equiv_hits={self.equiv_hits}" if self.equiv_hits else ""
        lines.append(
            f"suite: {self.circuits} circuits{resumed}  "
            f"wall={self.wall_seconds:.2f}s  searches={self.grape_searches}  "
            f"dedup_savings={self.dedup_savings}  cache={cache}  "
            f"library={self.library_entries} entries{store}{warm}{equiv}"
        )
        return "\n".join(lines)


class BatchCompiler:
    """Compile a suite of circuits through one shared pulse library."""

    def __init__(
        self,
        config: Optional[EPOCConfig] = None,
        flow: str = "epoc",
        library: Optional[PulseLibrary] = None,
        store: Optional["LibraryStore"] = None,
        journal_path: Optional[str] = None,
        resume: bool = False,
    ):
        if flow not in BATCH_FLOWS:
            raise ReproError(
                f"unknown batch flow {flow!r}; expected one of {BATCH_FLOWS}"
            )
        if resume and journal_path is None:
            raise ReproError("batch resume requires a journal path")
        self.config = config or EPOCConfig()
        self.flow = flow
        if library is None:
            library = PulseLibrary(
                config=self.config.qoc,
                match_global_phase=self.config.cache_global_phase,
                resilience=self.config.resilience,
            )
        self.library = library
        self.store = store
        self.journal_path = journal_path
        self.resume = resume

    # -- flow construction ----------------------------------------------

    def _make_flow(self, executor: Optional[ParallelExecutor]):
        """A fresh flow object bound to the shared library.

        Returns ``(flow, supports_executor)`` — only the EPOC pipeline
        accepts an external executor; the baselines manage their own.
        """
        if self.flow == "gate-based":
            return GateBasedFlow(self.config), False
        if self.flow == "accqoc":
            return AccQOCFlow(self.config, library=self.library), False
        if self.flow == "paqoc":
            return PAQOCFlow(self.config, library=self.library), False
        return (
            EPOCPipeline(
                self.config,
                library=self.library,
                use_regrouping=self.flow == "epoc",
            ),
            True,
        )

    def _checkpoint_store(self) -> Optional["LibraryStore"]:
        """The store, when per-pulse checkpoints target the store's file.

        Incremental flushes into the shared library must use the store's
        merge (locked load-merge-save for JSON, one upsert transaction
        for SQLite), or two concurrent batches would reintroduce the
        exact lost-update race the store exists to fix.
        """
        checkpoint = self.config.resilience.checkpoint_path
        if (
            self.store is not None
            and checkpoint is not None
            and os.path.abspath(checkpoint) == self.store.path
        ):
            return self.store
        return None

    def fingerprint(self) -> str:
        """The configuration identity a suite journal is bound to."""
        return config_fingerprint(
            self.config.qoc, self.config.cache_global_phase, self.flow
        )

    # -- compilation -----------------------------------------------------

    def compile_suite(
        self, circuits: Mapping[str, QuantumCircuit]
    ) -> BatchReport:
        """Compile every named circuit and return the aggregate report."""
        items: List[Tuple[str, QuantumCircuit]] = list(circuits.items())
        if not items:
            raise ReproError("batch compilation needs at least one circuit")
        start = time.perf_counter()
        tracer = telemetry.get_tracer()
        metrics = telemetry.get_metrics()
        metrics.inc("batch.suites")

        journal: Optional[SuiteJournal] = None
        completed: Dict[str, dict] = {}
        if self.journal_path is not None:
            journal = SuiteJournal(self.journal_path)
            completed = journal.open(
                [name for name, _ in items],
                self.fingerprint(),
                resume=self.resume,
            )

        report = BatchReport()
        # the suite observer owns the user-facing sinks (JSONL/TTY): the
        # per-circuit observers find the installed bus and reuse it, so a
        # batch writes one merged event stream, not one file per circuit
        observer = obs.observe_run(
            self.config.obs,
            circuit=f"suite[{len(items)}]",
            method=self.flow,
            fingerprint=self.fingerprint(),
            kind="suite",
        )
        with observer, tracer.span(
            "compile_batch", circuits=len(items), flow=self.flow
        ), observer.stage("compile_suite"):
            if self.store is not None:
                report.store_loaded = self.store.pull(self.library)
                if report.store_loaded:
                    logger.info(
                        "warm start: %d entries from %s",
                        report.store_loaded,
                        self.store.path,
                    )
            searches_before = self.library.misses
            near_hits_before = self.library.near_hits
            equiv_before = self.library.equiv_hits
            executor = ParallelExecutor.from_config(
                self.config.parallel, self.config.resilience
            )
            try:
                with executor:
                    for name, circuit in items:
                        if name in completed:
                            report.outcomes.append(
                                CircuitOutcome.from_journal(completed[name])
                            )
                            logger.info(
                                "skipping %s: already compiled (journal)", name
                            )
                            continue
                        report.outcomes.append(
                            self._compile_one(name, circuit, executor, journal)
                        )
                        if self.store is not None:
                            self.store.sync(self.library)
            except BaseException:
                if journal is not None:
                    journal.close(complete=False)
                raise
            else:
                if journal is not None:
                    journal.close(complete=True)

        report.grape_searches = self.library.misses - searches_before
        report.warm_starts = self.library.near_hits - near_hits_before
        report.equiv_hits = self.library.equiv_hits - equiv_before
        solo_searches = sum(
            outcome.unique_qoc_items
            for outcome in report.outcomes
            if not outcome.resumed
        )
        report.dedup_savings = solo_searches - report.grape_searches
        report.library_entries = len(self.library)
        report.wall_seconds = time.perf_counter() - start
        metrics.inc("batch.circuits", report.circuits - report.resumed_circuits)
        metrics.gauge("batch.dedup_savings", report.dedup_savings)
        metrics.gauge("batch.library_entries", report.library_entries)
        logger.info(
            "batch: %d circuits, %d GRAPE searches (%d saved by sharing), "
            "library %d entries",
            report.circuits,
            report.grape_searches,
            report.dedup_savings,
            report.library_entries,
        )
        observer.record_values(
            circuit=f"suite[{report.circuits}]",
            method=self.flow,
            wall_seconds=report.wall_seconds,
            pulse_count=sum(
                outcome.pulse_count
                for outcome in report.outcomes
                if not outcome.resumed
            ),
            cache_hits=report.cache_hits,
            cache_misses=report.cache_misses,
            degraded_blocks=sum(
                outcome.degraded_blocks
                for outcome in report.outcomes
                if not outcome.resumed
            ),
            extra={
                "circuits": report.circuits,
                "resumed_circuits": report.resumed_circuits,
                "dedup_savings": report.dedup_savings,
                "library_entries": report.library_entries,
                "store_loaded": report.store_loaded,
                "equiv_hits": report.equiv_hits,
            },
        )
        return report

    def _compile_one(
        self,
        name: str,
        circuit: QuantumCircuit,
        executor: ParallelExecutor,
        journal: Optional[SuiteJournal],
    ) -> CircuitOutcome:
        flow, supports_executor = self._make_flow(executor)
        hits_before = self.library.hits
        misses_before = self.library.misses
        if supports_executor:
            compiled = flow.compile(
                circuit,
                name=name,
                executor=executor,
                checkpoint_store=self._checkpoint_store(),
            )
        else:
            compiled = flow.compile(circuit, name=name)
        outcome = CircuitOutcome(
            name=name,
            method=compiled.method,
            latency_ns=compiled.latency_ns,
            fidelity=compiled.fidelity,
            compile_seconds=compiled.compile_seconds,
            pulse_count=compiled.pulse_count,
            cache_hits=self.library.hits - hits_before,
            cache_misses=self.library.misses - misses_before,
            qoc_items=int(compiled.stats.get("qoc_items", 0.0)),
            unique_qoc_items=int(compiled.stats.get("unique_qoc_items", 0.0)),
            degraded_blocks=len(compiled.degraded_blocks),
            report=compiled,
        )
        if journal is not None:
            journal.record_circuit(name, outcome.method, outcome.stats_dict())
        return outcome

"""Suite-level journal: checkpoint/resume of a partially compiled batch.

The per-circuit pulse-library checkpoint (PR 3's
:class:`~repro.resilience.CompilationJournal`) makes a killed *circuit*
cheap to redo — its solved pulses reload as cache hits.  A killed *suite*
additionally wants to skip the circuits that already finished, and the
aggregate report still wants their numbers.  :class:`SuiteJournal` is the
append-only JSONL log that makes both possible::

    {"event": "begin", "suite": [...], "fingerprint": ..., "resumed": N}
    {"event": "circuit", "name": "ghz", "method": "epoc", "stats": {...}}
    {"event": "done", "circuits": 7}

Each ``circuit`` record carries the summary statistics the batch report
needs (latency, fidelity, pulse count, per-circuit cache deltas), so a
resumed batch reconstructs completed rows from the journal without
recompiling — the heavyweight artifacts (the pulses themselves) live in
the shared library file, not here.

A resume refuses to run under a changed configuration fingerprint, and a
crash-truncated final line is salvaged with the same tail-repair protocol
as the compilation journal.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

from repro import telemetry
from repro.resilience.journal import (
    JournalError,
    journal_records,
    salvage_journal_tail,
)

__all__ = ["SuiteJournal"]

logger = telemetry.get_logger("batch.journal")


class SuiteJournal:
    """Append-only record of which suite circuits have been compiled."""

    def __init__(self, path: str):
        self.path = os.path.abspath(path)
        self._fh = None
        self._circuits = 0

    def open(
        self,
        suite: Sequence[str],
        fingerprint: str,
        resume: bool = False,
    ) -> Dict[str, dict]:
        """Start (or resume) the journal.

        Returns the completed circuits salvaged from a previous run as a
        ``name -> circuit-record`` map (empty for a fresh start).  With
        ``resume=True`` the previous run's fingerprint must match —
        mixing configurations would stitch incomparable rows into one
        suite report.
        """
        completed: Dict[str, dict] = {}
        if resume and os.path.exists(self.path):
            salvage_journal_tail(self.path)
            records, _ = journal_records(self.path)
            stored = self._last_fingerprint(records)
            if stored is not None and stored != fingerprint:
                raise JournalError(
                    f"suite journal {self.path} was written under a "
                    f"different configuration (fingerprint {stored} != "
                    f"{fingerprint}); refusing to resume"
                )
            for record in records:
                if record.get("event") == "circuit" and record.get("name"):
                    completed[record["name"]] = record
            if completed:
                telemetry.get_metrics().inc(
                    "batch.circuits_resumed", len(completed)
                )
                logger.info(
                    "resuming suite: %d of %d circuits already compiled",
                    len(completed),
                    len(suite),
                )
        mode = "a" if resume and os.path.exists(self.path) else "w"
        self._fh = open(self.path, mode)
        self._circuits = len(completed)
        self._write(
            {
                "event": "begin",
                "suite": list(suite),
                "fingerprint": fingerprint,
                "resumed": len(completed),
            }
        )
        return completed

    def record_circuit(self, name: str, method: str, stats: dict) -> None:
        """Note one completed circuit with its summary statistics."""
        self._circuits += 1
        self._write(
            {"event": "circuit", "name": name, "method": method, "stats": stats}
        )

    def close(self, complete: bool = True) -> None:
        """Seal the journal (idempotent)."""
        if self._fh is None:
            return
        self._write(
            {
                "event": "done" if complete else "abort",
                "circuits": self._circuits,
            }
        )
        self._fh.close()
        self._fh = None

    def __enter__(self) -> "SuiteJournal":
        return self

    def __exit__(self, exc_type, *exc_info) -> None:
        self.close(complete=exc_type is None)

    # -- internals -------------------------------------------------------

    def _write(self, record: dict) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()

    @staticmethod
    def _last_fingerprint(records: List[dict]) -> Optional[str]:
        fingerprint: Optional[str] = None
        for record in records:
            if record.get("event") == "begin":
                fingerprint = record.get("fingerprint")
        return fingerprint

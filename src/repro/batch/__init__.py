"""Batch compilation: a suite of circuits through one shared pulse library.

The pulse library is the paper's cross-program artifact — built once per
calibration, reused across circuits — and this package is the machinery
that exploits it at suite scale:

* :class:`BatchCompiler` compiles a whole suite (a directory of QASM
  files, or named :mod:`repro.workloads` families) through one shared
  :class:`~repro.qoc.library.PulseLibrary`, extending singleflight
  deduplication across circuit boundaries.
* :class:`SharedLibraryStore` persists that library on disk safely under
  concurrent invocations (exclusive-lock load-merge-save, fixing the
  lost-update race of naive load/save).
* :class:`SuiteJournal` checkpoints suite progress so a killed batch
  resumes from the last completed circuit.

CLI entry point: ``python -m repro.cli compile-batch``.
"""

from repro.batch.engine import (
    BATCH_FLOWS,
    BatchCompiler,
    BatchReport,
    CircuitOutcome,
)
from repro.batch.journal import SuiteJournal
from repro.batch.store import SharedLibraryStore, StoreLockTimeout, StoreSync

__all__ = [
    "BATCH_FLOWS",
    "BatchCompiler",
    "BatchReport",
    "CircuitOutcome",
    "SuiteJournal",
    "SharedLibraryStore",
    "StoreLockTimeout",
    "StoreSync",
]

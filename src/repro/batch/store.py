"""Cross-process persistence for a shared pulse library.

The pulse library is a cross-program artifact — AccQOC builds it once per
calibration and amortizes it across circuits, and EPOC's global-phase
keying exists precisely to raise that reuse rate — so concurrent
compilations routinely point at the *same* library file.  The naive
protocol (load at start, ``save`` at the end) has a lost-update race:

    process A: load {}          process B: load {}
    process A: solve k1, save {k1}
                                process B: solve k2, save {k2}   # k1 gone

:class:`SharedLibraryStore` serializes every disk interaction behind an
exclusive file lock and replaces blind saves with a **load-merge-save**
round: under the lock, the on-disk entries are merged into the in-memory
library by cache key (pulse searches are deterministic, so two processes
that solved the same key produced the same pulse) and the union is
written back atomically.  Entry validation — schema version, per-entry
checksums, quarantine of corrupted payloads — is inherited from
:meth:`repro.qoc.library.PulseLibrary.load`, which runs
:func:`repro.verify.artifacts.validate_entry` on every staged entry.

Locking uses ``fcntl.flock`` on a sidecar ``<path>.lock`` file (the data
file itself cannot be locked because atomic saves replace its inode).
On platforms without ``fcntl`` an ``O_CREAT | O_EXCL`` spin lockfile is
used instead.
"""

from __future__ import annotations

import errno
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from repro import telemetry
from repro.exceptions import StoreBusyError

try:  # POSIX; gated so the module imports (degraded) elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

__all__ = [
    "SharedLibraryStore",
    "StoreSync",
    "StoreLockTimeout",
    "ENV_STORE_TIMEOUT",
    "DEFAULT_STORE_TIMEOUT",
    "resolve_store_timeout",
]

logger = telemetry.get_logger("batch.store")

#: environment override for every store timeout (flock wait on the JSON
#: backend, busy-timeout on SQLite); an explicit argument always wins.
ENV_STORE_TIMEOUT = "REPRO_STORE_TIMEOUT"

DEFAULT_STORE_TIMEOUT = 60.0


def resolve_store_timeout(timeout_seconds: Optional[float]) -> float:
    """Explicit argument > ``REPRO_STORE_TIMEOUT`` > 60s default."""
    if timeout_seconds is not None:
        return float(timeout_seconds)
    raw = os.environ.get(ENV_STORE_TIMEOUT)
    if raw:
        try:
            return float(raw)
        except ValueError:
            logger.warning(
                "ignoring non-numeric %s=%r", ENV_STORE_TIMEOUT, raw
            )
    return DEFAULT_STORE_TIMEOUT

#: errno values that mean "another process holds the lock" — the only
#: failures worth retrying.  ``EACCES`` is included because POSIX allows
#: it in place of ``EAGAIN`` for mandatory-locking filesystems.
_CONTENTION_ERRNOS = frozenset(
    {errno.EWOULDBLOCK, errno.EAGAIN, errno.EACCES}
)


class StoreLockTimeout(StoreBusyError):
    """The store's file lock could not be acquired within the timeout.

    A :class:`~repro.exceptions.StoreBusyError` specialization kept for
    backward compatibility with existing ``except StoreLockTimeout``
    call sites; new code should catch ``StoreBusyError``.
    """


@dataclass(frozen=True)
class StoreSync:
    """Accounting for one locked load-merge-save round."""

    #: valid entries read from disk during the round (0 on first sync).
    loaded_entries: int
    #: disk entries that were new to the in-memory library.
    new_entries: int
    #: library size after the merge (what the save wrote back).
    total_entries: int


class SharedLibraryStore:
    """Lock-protected load-merge-save persistence for one library file."""

    #: storage backend tag; :class:`repro.db.SqliteLibraryStore` reports
    #: ``"sqlite"`` — callers that need to branch (the resilience
    #: journal's resume path) dispatch on this instead of importing both.
    kind = "json"

    def __init__(
        self,
        path: str,
        timeout_seconds: Optional[float] = None,
        poll_seconds: float = 0.05,
    ):
        self.path = os.path.abspath(path)
        self.lock_path = self.path + ".lock"
        self.timeout_seconds = resolve_store_timeout(timeout_seconds)
        self.poll_seconds = max(0.001, float(poll_seconds))
        self._lock_fd: Optional[int] = None

    # -- locking ---------------------------------------------------------

    @contextmanager
    def locked(self) -> Iterator[None]:
        """Hold the store's exclusive lock for the duration of the block."""
        waited = self._acquire()
        metrics = telemetry.get_metrics()
        metrics.inc("batch.store_locks")
        metrics.observe("batch.store_lock_wait_seconds", waited)
        try:
            yield
        finally:
            self._release()

    def _acquire(self) -> float:
        deadline = time.monotonic() + self.timeout_seconds
        start = time.monotonic()
        if fcntl is not None:
            self._lock_fd = os.open(self.lock_path, os.O_CREAT | os.O_RDWR, 0o644)
            while True:
                try:
                    fcntl.flock(self._lock_fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    self._write_holder_pid(self._lock_fd)
                    return time.monotonic() - start
                except OSError as exc:
                    if exc.errno not in _CONTENTION_ERRNOS:
                        # EBADF, ENOLCK (NFS), EINTR storms, ... — not
                        # contention; spinning until the deadline would
                        # only bury the real error under a misleading
                        # StoreLockTimeout.
                        os.close(self._lock_fd)
                        self._lock_fd = None
                        raise
                    if time.monotonic() >= deadline:
                        os.close(self._lock_fd)
                        self._lock_fd = None
                        raise self._timeout_error()
                    time.sleep(self.poll_seconds)
        # fallback: exclusive-create spin lock (best effort, non-POSIX)
        while True:  # pragma: no cover - exercised only without fcntl
            try:
                self._lock_fd = os.open(
                    self.lock_path, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o644
                )
                self._spin_lock = True
                self._write_holder_pid(self._lock_fd)
                return time.monotonic() - start
            except FileExistsError:
                if time.monotonic() >= deadline:
                    raise self._timeout_error()
                time.sleep(self.poll_seconds)

    def _write_holder_pid(self, fd: int) -> None:
        """Record our pid in the lock file for StoreBusyError diagnostics."""
        try:
            os.ftruncate(fd, 0)
            os.pwrite(fd, str(os.getpid()).encode(), 0)
        except OSError:  # pragma: no cover - diagnostics only
            pass

    def holder_pid(self) -> Optional[int]:
        """The pid recorded by the current/last lock holder (best effort)."""
        try:
            with open(self.lock_path, "rb") as fh:
                return int(fh.read(32).strip() or 0) or None
        except (OSError, ValueError):
            return None

    def _timeout_error(self) -> StoreLockTimeout:
        holder = self.holder_pid()
        held_by = f" (held by pid {holder})" if holder else ""
        return StoreLockTimeout(
            f"could not lock {self.lock_path} within "
            f"{self.timeout_seconds:.1f}s{held_by}",
            path=self.path,
            holder_pid=holder,
            timeout_seconds=self.timeout_seconds,
        )

    def _release(self) -> None:
        fd = getattr(self, "_lock_fd", None)
        if fd is None:
            return
        # Whatever unlock does, the fd must be closed and the field
        # cleared — a stale _lock_fd would make the next _acquire leak
        # it, and the still-open descriptor would keep the flock held
        # for the life of the process.
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            self._lock_fd = None
            try:
                os.close(fd)
            except OSError:  # pragma: no cover - already closed
                pass
            if fcntl is None:  # pragma: no cover - non-POSIX fallback
                try:
                    os.unlink(self.lock_path)
                except OSError:
                    pass

    # -- synchronization -------------------------------------------------

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def pull(self, library) -> int:
        """Merge the on-disk entries into ``library`` under the lock.

        Returns the number of entries that were new to the library.
        The disk file is not modified — use :meth:`sync` to also publish
        local entries.
        """
        with self.locked():
            return self._merge_from_disk(library)

    def sync(self, library) -> StoreSync:
        """One locked load-merge-save round: read the current disk
        entries into ``library`` (merge by cache key), then atomically
        write the union back.

        Two processes compiling against the same file can interleave
        ``sync`` calls freely: each one starts from the latest published
        union, so neither can drop the other's entries.
        """
        metrics = telemetry.get_metrics()
        with self.locked():
            before = len(library)
            loaded = self._merge_from_disk(library)
            new = len(library) - before
            library.save(self.path)
        metrics.inc("batch.store_syncs")
        metrics.inc("batch.store_merged_entries", new)
        logger.debug(
            "store sync: %d loaded, %d new, %d total -> %s",
            loaded,
            new,
            len(library),
            self.path,
        )
        return StoreSync(
            loaded_entries=loaded,
            new_entries=new,
            total_entries=len(library),
        )

    def _merge_from_disk(self, library) -> int:
        if not os.path.exists(self.path):
            return 0
        return library.load(self.path)

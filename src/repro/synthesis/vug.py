"""Variable-unitary-gate (VUG) circuit templates.

A template is an ordered list of operations on ``num_qubits`` wires:

* ``("vug", (q,))`` — a single-qubit variable unitary, parameterized as a
  ``u3(theta, phi, lam)`` rotation (3 parameters), and
* ``("cx", (control, target))`` — a fixed CNOT.

This is exactly the gate vocabulary QSearch explores: after synthesis the
circuit "consists solely of VUGs and CNOT gates" (paper, Section 3.3).
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.exceptions import SynthesisError
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import gate_matrix, u3_matrix
from repro.linalg.tensor import embed_operator

__all__ = ["VUGTemplate", "u3_gradients"]

_PARAMS_PER_VUG = 3


def u3_gradients(theta: float, phi: float, lam: float) -> List[np.ndarray]:
    """Partial derivatives of the u3 matrix wrt (theta, phi, lam)."""
    cos = math.cos(theta / 2.0)
    sin = math.sin(theta / 2.0)
    eil = cmath.exp(1j * lam)
    eip = cmath.exp(1j * phi)
    eipl = cmath.exp(1j * (phi + lam))
    d_theta = 0.5 * np.array(
        [[-sin, -eil * cos], [eip * cos, -eipl * sin]], dtype=complex
    )
    d_phi = np.array([[0.0, 0.0], [1j * eip * sin, 1j * eipl * cos]], dtype=complex)
    d_lam = np.array([[0.0, -1j * eil * sin], [0.0, 1j * eipl * cos]], dtype=complex)
    return [d_theta, d_phi, d_lam]


@dataclass(frozen=True)
class VUGTemplate:
    """An immutable VUG+CNOT circuit structure on ``num_qubits`` wires."""

    num_qubits: int
    ops: Tuple[Tuple[str, Tuple[int, ...]], ...]

    def __post_init__(self):
        for kind, qubits in self.ops:
            if kind == "vug" and len(qubits) != 1:
                raise SynthesisError("vug ops act on exactly one qubit")
            if kind == "cx" and len(qubits) != 2:
                raise SynthesisError("cx ops act on exactly two qubits")
            if kind not in ("vug", "cx"):
                raise SynthesisError(f"unknown template op {kind!r}")
            if any(q < 0 or q >= self.num_qubits for q in qubits):
                raise SynthesisError(f"template op {kind} out of range: {qubits}")

    # -- structure -----------------------------------------------------------

    @property
    def num_params(self) -> int:
        return _PARAMS_PER_VUG * sum(1 for kind, _ in self.ops if kind == "vug")

    @property
    def cnot_count(self) -> int:
        return sum(1 for kind, _ in self.ops if kind == "cx")

    def extended(self, control: int, target: int) -> "VUGTemplate":
        """Successor template: append CNOT(control, target) + a VUG on each
        of the two wires (the QSearch expansion step)."""
        new_ops = self.ops + (
            ("cx", (control, target)),
            ("vug", (control,)),
            ("vug", (target,)),
        )
        return VUGTemplate(self.num_qubits, new_ops)

    @classmethod
    def initial(cls, num_qubits: int) -> "VUGTemplate":
        """The search root: one VUG on every wire."""
        return cls(num_qubits, tuple(("vug", (q,)) for q in range(num_qubits)))

    def structure_key(self) -> Tuple:
        """Hashable key identifying the CNOT skeleton (for search dedup)."""
        return tuple(qubits for kind, qubits in self.ops if kind == "cx")

    # -- evaluation ------------------------------------------------------------

    def matrix(self, params: np.ndarray) -> np.ndarray:
        """The template's unitary for the given flat parameter vector."""
        dim = 2**self.num_qubits
        result = np.eye(dim, dtype=complex)
        cursor = 0
        cx_cache: Dict[Tuple[int, int], np.ndarray] = {}
        for kind, qubits in self.ops:
            if kind == "vug":
                theta, phi, lam = params[cursor : cursor + 3]
                cursor += 3
                gate = embed_operator(
                    u3_matrix(theta, phi, lam), qubits, self.num_qubits
                )
            else:
                if qubits not in cx_cache:
                    cx_cache[qubits] = embed_operator(
                        gate_matrix("cx"), qubits, self.num_qubits
                    )
                gate = cx_cache[qubits]
            result = gate @ result
        return result

    def matrix_and_gradient(
        self, params: np.ndarray
    ) -> Tuple[np.ndarray, List[np.ndarray]]:
        """The unitary and the list of its parameter derivatives."""
        dim = 2**self.num_qubits
        embedded: List[np.ndarray] = []
        grads_per_op: List[List[np.ndarray]] = []
        cursor = 0
        for kind, qubits in self.ops:
            if kind == "vug":
                theta, phi, lam = params[cursor : cursor + 3]
                cursor += 3
                embedded.append(
                    embed_operator(u3_matrix(theta, phi, lam), qubits, self.num_qubits)
                )
                grads_per_op.append(
                    [
                        embed_operator(d, qubits, self.num_qubits)
                        for d in u3_gradients(theta, phi, lam)
                    ]
                )
            else:
                embedded.append(
                    embed_operator(gate_matrix("cx"), qubits, self.num_qubits)
                )
                grads_per_op.append([])

        k = len(embedded)
        prefixes = [np.eye(dim, dtype=complex)]
        for gate in embedded:
            prefixes.append(gate @ prefixes[-1])
        suffixes = [np.eye(dim, dtype=complex)] * (k + 1)
        suffixes[k] = np.eye(dim, dtype=complex)
        for i in range(k - 1, -1, -1):
            suffixes[i] = suffixes[i + 1] @ embedded[i]
        # suffixes[i] = G_k ... G_{i+1} applied AFTER op i; note suffixes[i]
        # includes gate i itself with this recurrence, so shift by one:
        gradients: List[np.ndarray] = []
        for i in range(k):
            left = suffixes[i + 1]
            right = prefixes[i]
            for d in grads_per_op[i]:
                gradients.append(left @ d @ right)
        return prefixes[k], gradients

    # -- export ------------------------------------------------------------------

    def to_circuit(self, params: np.ndarray) -> QuantumCircuit:
        """Materialize as a :class:`QuantumCircuit` of u3 + cx gates."""
        circuit = QuantumCircuit(self.num_qubits)
        cursor = 0
        for kind, qubits in self.ops:
            if kind == "vug":
                theta, phi, lam = params[cursor : cursor + 3]
                cursor += 3
                circuit.add("u3", list(qubits), [theta, phi, lam])
            else:
                circuit.add("cx", list(qubits))
        return circuit

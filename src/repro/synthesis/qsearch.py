"""QSearch-style A* circuit synthesis (Algorithm 2 of the paper).

Nodes are VUG+CNOT templates; the root is a layer of VUGs, and expansion
appends ``CNOT(a, b)`` followed by fresh VUGs on the two touched wires.
Each node is *instantiated* (numerically optimized) against the target;
the search is guided by ``f = g + heuristic_weight * distance`` with
``g = cnot_count`` — short circuits that are close to the target win.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

import numpy as np

from repro import telemetry
from repro.exceptions import SynthesisError
from repro.circuits.circuit import QuantumCircuit
from repro.linalg.decompose import euler_decompose_u3
from repro.racing.cancel import poll_cancellation
from repro.synthesis.instantiate import instantiate
from repro.synthesis.vug import VUGTemplate

__all__ = ["SynthesisResult", "qsearch_synthesize"]

logger = telemetry.get_logger("synthesis.qsearch")


def _record_outcome(result: "SynthesisResult") -> "SynthesisResult":
    metrics = telemetry.get_metrics()
    metrics.inc("synthesis.qsearch.calls")
    metrics.observe("synthesis.qsearch.nodes_expanded", result.nodes_expanded)
    metrics.observe("synthesis.qsearch.cnot_count", result.cnot_count)
    logger.debug(
        "qsearch: %d CNOTs at distance %.2e (%d nodes expanded)",
        result.cnot_count,
        result.distance,
        result.nodes_expanded,
    )
    return result


@dataclass(frozen=True)
class SynthesisResult:
    """Outcome of a synthesis run."""

    circuit: QuantumCircuit
    distance: float
    cnot_count: int
    nodes_expanded: int
    method: str


@dataclass(order=True)
class _Node:
    priority: float
    counter: int
    template: VUGTemplate = field(compare=False)
    params: np.ndarray = field(compare=False)
    distance: float = field(compare=False)


def qsearch_synthesize(
    target: np.ndarray,
    threshold: float = 1e-6,
    max_cnots: int = 14,
    max_nodes: int = 120,
    heuristic_weight: float = 10.0,
    restarts: int = 2,
    seed: int = 11,
    couplings: Optional[List[Tuple[int, int]]] = None,
    deadline=None,
    cancel=None,
) -> SynthesisResult:
    """Synthesize ``target`` into VUGs + CNOTs by heuristic A* search.

    Raises :class:`SynthesisError` when no node within the budget reaches
    ``threshold`` (callers fall back to :func:`repro.synthesis.qsd.
    qsd_synthesize`).  ``couplings`` restricts CNOT placement (defaults to
    all ordered pairs — all-to-all connectivity).

    The expansion loop is a cooperative cancellation point: an expired
    ``deadline`` (:class:`~repro.resilience.policy.Deadline`) raises
    :class:`SynthesisError` before the next node is expanded, and a set
    ``cancel`` token (:class:`~repro.racing.cancel.CancelToken`) unwinds
    with :class:`~repro.exceptions.RaceCancelled` — neither affects the
    search result when they never trigger, so racing keeps QSearch
    bitwise-deterministic.
    """
    target = np.asarray(target, dtype=complex)
    with telemetry.get_tracer().span("qsearch", dim=target.shape[0]) as span:
        try:
            result = _qsearch_search(
                target,
                threshold=threshold,
                max_cnots=max_cnots,
                max_nodes=max_nodes,
                heuristic_weight=heuristic_weight,
                restarts=restarts,
                seed=seed,
                couplings=couplings,
                deadline=deadline,
                cancel=cancel,
            )
        except SynthesisError:
            telemetry.get_metrics().inc("synthesis.qsearch.failures")
            raise
        span.set(cnots=result.cnot_count, nodes_expanded=result.nodes_expanded)
        return _record_outcome(result)


def _qsearch_search(
    target: np.ndarray,
    threshold: float,
    max_cnots: int,
    max_nodes: int,
    heuristic_weight: float,
    restarts: int,
    seed: int,
    couplings: Optional[List[Tuple[int, int]]],
    deadline=None,
    cancel=None,
) -> SynthesisResult:
    dim = target.shape[0]
    num_qubits = int(dim).bit_length() - 1
    if 2**num_qubits != dim:
        raise SynthesisError(f"target dimension {dim} is not a power of two")

    if num_qubits == 1:
        theta, phi, lam, _ = euler_decompose_u3(target)
        circuit = QuantumCircuit(1)
        circuit.add("u3", [0], [theta, phi, lam])
        return SynthesisResult(circuit, 0.0, 0, 0, method="euler")

    if couplings is None:
        couplings = [
            (a, b)
            for a, b in itertools.permutations(range(num_qubits), 2)
        ]

    counter = itertools.count()
    root_template = VUGTemplate.initial(num_qubits)
    root_fit = instantiate(root_template, target, restarts=restarts, seed=seed)
    heap: List[_Node] = [
        _Node(
            priority=heuristic_weight * root_fit.distance,
            counter=next(counter),
            template=root_template,
            params=root_fit.params,
            distance=root_fit.distance,
        )
    ]
    seen: Set[Tuple] = {root_template.structure_key()}
    best: Optional[_Node] = heap[0]
    expanded = 0

    while heap:
        # cooperative cancellation point: one check per popped node, so a
        # raced/timed-out search (or a cancelled service job) stops within
        # a single node expansion
        poll_cancellation(cancel)
        if deadline is not None and deadline.expired:
            assert best is not None
            raise SynthesisError(
                f"qsearch deadline expired after {expanded} nodes; best "
                f"distance {best.distance:.3e} with "
                f"{best.template.cnot_count} CNOTs"
            )
        node = heapq.heappop(heap)
        if node.distance < threshold:
            return SynthesisResult(
                circuit=node.template.to_circuit(node.params),
                distance=node.distance,
                cnot_count=node.template.cnot_count,
                nodes_expanded=expanded,
                method="qsearch",
            )
        if node.template.cnot_count >= max_cnots:
            continue
        if expanded >= max_nodes:
            break
        expanded += 1
        for control, target_qubit in couplings:
            successor = node.template.extended(control, target_qubit)
            key = successor.structure_key()
            if key in seen:
                continue
            seen.add(key)
            fit = instantiate(
                successor,
                target,
                restarts=restarts,
                seed=seed + expanded,
                initial=node.params,
            )
            child = _Node(
                priority=successor.cnot_count
                + heuristic_weight * fit.distance,
                counter=next(counter),
                template=successor,
                params=fit.params,
                distance=fit.distance,
            )
            if best is None or child.distance < best.distance:
                best = child
            if child.distance < threshold:
                return SynthesisResult(
                    circuit=child.template.to_circuit(child.params),
                    distance=child.distance,
                    cnot_count=child.template.cnot_count,
                    nodes_expanded=expanded,
                    method="qsearch",
                )
            heapq.heappush(heap, child)

    assert best is not None
    raise SynthesisError(
        f"qsearch exhausted its budget ({expanded} nodes); best distance "
        f"{best.distance:.3e} with {best.template.cnot_count} CNOTs"
    )

"""Circuit synthesis: VUG templates, QSearch A*, LEAP, QSD and a dispatcher.

:func:`synthesize_unitary` is the production entry point used by the EPOC
pipeline: QSearch for small/easy targets, LEAP when the A* frontier runs
out, and quantum Shannon decomposition as a guaranteed analytic fallback.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.config import RacingConfig, ResilienceConfig
from repro.exceptions import SynthesisError
from repro.linalg.unitary import hs_distance
from repro.partition.block import CircuitBlock
from repro.racing.cancel import cooperative_stall
from repro.resilience.faults import fault_fires
from repro.resilience.policy import RetryPolicy, retry_call
from repro.synthesis.vug import VUGTemplate, u3_gradients
from repro.synthesis.instantiate import InstantiationResult, instantiate
from repro.synthesis.qsearch import SynthesisResult, qsearch_synthesize
from repro.synthesis.leap import leap_synthesize
from repro.synthesis.qsd import qsd_synthesize
from repro.synthesis.kak import (
    KAKDecomposition,
    kak_decompose,
    kak_synthesize,
    weyl_coordinates,
)

__all__ = [
    "KAKDecomposition",
    "kak_decompose",
    "kak_synthesize",
    "weyl_coordinates",
    "VUGTemplate",
    "u3_gradients",
    "InstantiationResult",
    "instantiate",
    "SynthesisResult",
    "qsearch_synthesize",
    "leap_synthesize",
    "qsd_synthesize",
    "synthesize_unitary",
    "synthesize_block",
]


def _qsearch_strategy(
    target: np.ndarray,
    threshold: float,
    max_cnots: int,
    qsearch_max_nodes: int,
    seed: int,
    couplings: Optional[List[Tuple[int, int]]],
    policy: RetryPolicy,
    deadline=None,
    cancel=None,
) -> SynthesisResult:
    """The QSearch leg of the fallback chain (shared serial/raced body)."""
    num_qubits = max(int(target.shape[0]).bit_length() - 1, 1)
    cooperative_stall(
        "synthesis.stall",
        cancel=cancel,
        deadline=deadline,
        strategy="qsearch",
        qubits=num_qubits,
    )
    if fault_fires("synthesis.qsearch"):
        raise SynthesisError("injected qsearch fault")
    return retry_call(
        lambda attempt: qsearch_synthesize(
            target,
            threshold=threshold,
            max_cnots=min(max_cnots, 8),
            max_nodes=qsearch_max_nodes,
            seed=seed + attempt,
            couplings=couplings,
            deadline=deadline,
            cancel=cancel,
        ),
        policy,
        retry_on=(SynthesisError,),
        deadline=deadline,
        site="qsearch",
    )


def _leap_strategy(
    target: np.ndarray,
    threshold: float,
    max_cnots: int,
    seed: int,
    couplings: Optional[List[Tuple[int, int]]],
    policy: RetryPolicy,
    deadline=None,
    cancel=None,
) -> SynthesisResult:
    """The LEAP leg of the fallback chain (shared serial/raced body)."""
    num_qubits = max(int(target.shape[0]).bit_length() - 1, 1)
    cooperative_stall(
        "synthesis.stall",
        cancel=cancel,
        deadline=deadline,
        strategy="leap",
        qubits=num_qubits,
    )
    if fault_fires("synthesis.leap"):
        raise SynthesisError("injected leap fault")
    return retry_call(
        lambda attempt: leap_synthesize(
            target,
            threshold=threshold,
            max_cnots=max_cnots,
            seed=seed + attempt,
            couplings=couplings,
            deadline=deadline,
            cancel=cancel,
        ),
        policy,
        retry_on=(SynthesisError,),
        deadline=deadline,
        site="leap",
    )


def _analytic_strategy(target: np.ndarray) -> SynthesisResult:
    """The guaranteed analytic leg: KAK for two qubits, QSD beyond."""
    if target.shape[0] == 4:
        circuit = kak_synthesize(target)
        method = "kak"
    else:
        circuit = qsd_synthesize(target)
        method = "qsd"
    return SynthesisResult(
        circuit=circuit,
        distance=abs(hs_distance(target, circuit.unitary())),
        cnot_count=circuit.count_ops().get("cx", 0),
        nodes_expanded=0,
        method=method,
    )


def synthesize_unitary(
    target: np.ndarray,
    threshold: float = 1e-6,
    max_cnots: int = 14,
    qsearch_max_nodes: int = 60,
    seed: int = 11,
    couplings: Optional[List[Tuple[int, int]]] = None,
    resilience: Optional[ResilienceConfig] = None,
    racing: Optional[RacingConfig] = None,
) -> SynthesisResult:
    """Synthesize ``target`` into a VUG+CNOT circuit, never failing.

    The fallback chain is QSearch (optimal-leaning A*), then LEAP (greedy
    prefix growth), then a guaranteed analytic decomposition — KAK for
    two-qubit targets (<= 3 CNOTs), quantum Shannon decomposition
    otherwise — which always succeeds with distance ~0 at a higher CNOT
    cost.  With a ``resilience`` config, each heuristic stage re-attempts
    with a fresh seed before falling through, and every fallback hop is
    counted on ``resilience.fallbacks``.

    With an *active* ``racing`` config the same three strategies run as
    a hedged concurrent portfolio (see :mod:`repro.racing`); in the
    default deterministic mode the returned result is identical to the
    sequential chain's whenever it succeeds — racing only changes
    wall-clock.
    """
    target = np.asarray(target, dtype=complex)
    if racing is not None and racing.active:
        from repro.racing.portfolios import raced_synthesize_unitary

        return raced_synthesize_unitary(
            target,
            threshold=threshold,
            max_cnots=max_cnots,
            qsearch_max_nodes=qsearch_max_nodes,
            seed=seed,
            couplings=couplings,
            resilience=resilience,
            racing=racing,
        )
    metrics = telemetry.get_metrics()
    policy = RetryPolicy.from_config(resilience)
    try:
        return _qsearch_strategy(
            target,
            threshold=threshold,
            max_cnots=max_cnots,
            qsearch_max_nodes=qsearch_max_nodes,
            seed=seed,
            couplings=couplings,
            policy=policy,
        )
    except SynthesisError:
        metrics.inc("resilience.fallbacks")
        metrics.inc("synthesis.fallback_leap")
    try:
        return _leap_strategy(
            target,
            threshold=threshold,
            max_cnots=max_cnots,
            seed=seed,
            couplings=couplings,
            policy=policy,
        )
    except SynthesisError:
        metrics.inc("resilience.fallbacks")
        metrics.inc("synthesis.fallback_analytic")
    return _analytic_strategy(target)


def synthesize_block(
    block: CircuitBlock,
    threshold: float = 1e-6,
    max_cnots: int = 14,
    seed: int = 11,
    resilience: Optional[ResilienceConfig] = None,
    racing: Optional[RacingConfig] = None,
) -> CircuitBlock:
    """Synthesize a partition block's unitary into a VUG+CNOT circuit.

    The result is always expressed in the {u3, cx} vocabulary (the paper's
    "solely VUGs and CNOT gates"), so downstream regrouping never sees
    wide named gates.  When the search does not beat the block's own
    structure, the block's basis-transpiled circuit is kept instead —
    mirroring how the paper only benefits from synthesis when the VUG
    circuit is genuinely shorter.
    """
    from repro.circuits.transpile import decompose_to_cx_u3

    fallback = decompose_to_cx_u3(block.circuit)
    # Synthesis only pays off when it beats the block's own structure, so
    # bound the search by the CNOTs already present (a QSD fallback deeper
    # than the original would be discarded below anyway).
    own_cnots = fallback.two_qubit_count
    budget = min(max_cnots, max(own_cnots, 1))
    result = synthesize_unitary(
        block.unitary(),
        threshold=threshold,
        max_cnots=budget,
        seed=seed,
        resilience=resilience,
        racing=racing,
    )
    synthesized = result.circuit
    best = fallback
    # never trade accuracy for depth: a search result outside its own
    # threshold is discarded even when shallower (the stage-boundary
    # verifier would flag it; refusing it here keeps the flow clean)
    if result.distance <= max(threshold, 1e-9) and (
        synthesized.depth(),
        len(synthesized),
    ) < (fallback.depth(), len(fallback)):
        best = synthesized
    return CircuitBlock(qubits=block.qubits, circuit=best, index=block.index)

"""LEAP-style incremental synthesis (Smith et al., TQC 2023).

Where QSearch keeps a full A* frontier, LEAP grows a single prefix
greedily: at each level every CNOT placement is instantiated (warm-started
from the parent's parameters) and the best child is kept.  This scales to
deeper circuits — e.g. Haar-random 3-qubit targets needing ~14 CNOTs —
where the A* frontier would blow up.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import SynthesisError
from repro.racing.cancel import poll_cancellation
from repro.synthesis.instantiate import instantiate
from repro.synthesis.qsearch import SynthesisResult
from repro.synthesis.vug import VUGTemplate

__all__ = ["leap_synthesize"]


def leap_synthesize(
    target: np.ndarray,
    threshold: float = 1e-6,
    max_cnots: int = 24,
    restarts: int = 2,
    seed: int = 11,
    couplings: Optional[List[Tuple[int, int]]] = None,
    stall_limit: int = 4,
    deadline=None,
    cancel=None,
) -> SynthesisResult:
    """Greedy prefix-growth synthesis; raises when the budget is exhausted.

    ``stall_limit`` bounds the number of consecutive levels with no
    meaningful distance improvement before giving up early.  Each level
    is a cooperative cancellation point: an expired ``deadline`` raises
    :class:`SynthesisError`, a set ``cancel`` token raises
    :class:`~repro.exceptions.RaceCancelled` (see
    :mod:`repro.racing.cancel`).
    """
    target = np.asarray(target, dtype=complex)
    dim = target.shape[0]
    num_qubits = int(dim).bit_length() - 1
    if 2**num_qubits != dim:
        raise SynthesisError(f"target dimension {dim} is not a power of two")
    if couplings is None:
        couplings = list(itertools.permutations(range(num_qubits), 2))

    template = VUGTemplate.initial(num_qubits)
    fit = instantiate(template, target, restarts=restarts, seed=seed)
    expanded = 0
    stalls = 0

    while fit.distance >= threshold:
        # polls the explicit racing token *and* the ambient job token so a
        # service-side cancel stops an in-flight synthesis too
        poll_cancellation(cancel)
        if deadline is not None and deadline.expired:
            raise SynthesisError(
                f"leap deadline expired at {template.cnot_count} CNOTs; "
                f"best distance {fit.distance:.3e}"
            )
        if template.cnot_count >= max_cnots or stalls >= stall_limit:
            raise SynthesisError(
                f"leap exhausted its budget at {template.cnot_count} CNOTs; "
                f"best distance {fit.distance:.3e}"
            )
        best_child = None
        for control, target_qubit in couplings:
            candidate = template.extended(control, target_qubit)
            candidate_fit = instantiate(
                candidate,
                target,
                restarts=restarts,
                seed=seed + expanded,
                initial=fit.params,
            )
            expanded += 1
            if best_child is None or candidate_fit.distance < best_child[1].distance:
                best_child = (candidate, candidate_fit)
        assert best_child is not None
        improvement = fit.distance - best_child[1].distance
        stalls = stalls + 1 if improvement < threshold / 10.0 else 0
        template, fit = best_child

    return SynthesisResult(
        circuit=template.to_circuit(fit.params),
        distance=fit.distance,
        cnot_count=template.cnot_count,
        nodes_expanded=expanded,
        method="leap",
    )

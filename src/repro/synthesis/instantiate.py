"""Numerical instantiation of VUG templates against a target unitary.

Minimizes the global-phase-invariant Hilbert-Schmidt distance
``1 - |tr(U_target^dag V(x))| / d`` with analytic gradients and L-BFGS-B,
with a few deterministic random restarts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy.optimize import minimize

from repro.synthesis.vug import VUGTemplate

__all__ = ["InstantiationResult", "instantiate"]


@dataclass(frozen=True)
class InstantiationResult:
    """Best parameters found for a template."""

    params: np.ndarray
    distance: float


def _objective(template: VUGTemplate, target_dag: np.ndarray, dim: int):
    def fun(x: np.ndarray) -> Tuple[float, np.ndarray]:
        value, grads = template.matrix_and_gradient(x)
        overlap = np.trace(target_dag @ value)
        magnitude = abs(overlap)
        f = 1.0 - magnitude / dim
        if magnitude < 1e-12:
            return f, np.zeros(len(x))
        scale = np.conj(overlap) / magnitude
        grad = np.array(
            [-(scale * np.trace(target_dag @ g)).real / dim for g in grads]
        )
        return f, grad

    return fun


def instantiate(
    template: VUGTemplate,
    target: np.ndarray,
    restarts: int = 2,
    seed: int = 11,
    initial: Optional[np.ndarray] = None,
    max_iterations: int = 200,
    tolerance: float = 1e-12,
) -> InstantiationResult:
    """Fit the template's parameters to ``target``.

    ``initial`` warm-starts the first attempt (used by incremental
    synthesis, where the parent node's optimum is a good prefix guess).
    """
    dim = target.shape[0]
    target_dag = np.asarray(target, dtype=complex).conj().T
    objective = _objective(template, target_dag, dim)
    rng = np.random.default_rng(seed)

    best: Optional[InstantiationResult] = None
    num_params = template.num_params
    for attempt in range(max(1, restarts)):
        if attempt == 0 and initial is not None and len(initial) == num_params:
            x0 = np.asarray(initial, dtype=float)
        elif attempt == 0 and initial is not None:
            # pad a shorter warm start (parent template) with small noise
            x0 = rng.uniform(-0.1, 0.1, size=num_params)
            x0[: len(initial)] = initial
        else:
            x0 = rng.uniform(-np.pi, np.pi, size=num_params)
        result = minimize(
            objective,
            x0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": max_iterations, "ftol": tolerance, "gtol": 1e-12},
        )
        candidate = InstantiationResult(
            params=np.asarray(result.x, dtype=float), distance=float(result.fun)
        )
        if best is None or candidate.distance < best.distance:
            best = candidate
        if best.distance < 1e-10:
            break
    assert best is not None
    return best

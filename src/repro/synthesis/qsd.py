"""Quantum Shannon decomposition (Shende, Bullock, Markov 2005).

The top-down synthesis baseline and the guaranteed fallback when heuristic
search runs out of budget: any n-qubit unitary decomposes recursively via
the cosine-sine decomposition into multiplexed rotations and smaller
unitaries, bottoming out at single-qubit u3 gates.
"""

from __future__ import annotations

import cmath
import math
from typing import List, Sequence

import numpy as np
import scipy.linalg

from repro.exceptions import SynthesisError
from repro.circuits.circuit import QuantumCircuit
from repro.linalg.decompose import euler_decompose_u3

__all__ = ["qsd_synthesize"]

_ATOL = 1e-9


def qsd_synthesize(target: np.ndarray) -> QuantumCircuit:
    """Synthesize ``target`` into u3 + cx gates by recursive QSD.

    The result's unitary equals ``target`` up to global phase; gate count
    is O(4^n), the classic QSD bound.
    """
    target = np.asarray(target, dtype=complex)
    dim = target.shape[0]
    num_qubits = int(dim).bit_length() - 1
    if 2**num_qubits != dim:
        raise SynthesisError(f"dimension {dim} is not a power of two")
    circuit = QuantumCircuit(num_qubits)
    _qsd(circuit, target, list(range(num_qubits)))
    return circuit


def _qsd(circuit: QuantumCircuit, matrix: np.ndarray, qubits: List[int]) -> None:
    """Append gates implementing ``matrix`` on ``qubits`` (in order)."""
    if len(qubits) == 1:
        _append_u3(circuit, matrix, qubits[0])
        return
    half = matrix.shape[0] // 2
    # cosine-sine decomposition: matrix = (L1 (+) L2) . CS . (R1 (+) R2)
    (u1, u2), theta, (v1h, v2h) = scipy.linalg.cossin(
        matrix, p=half, q=half, separate=True
    )
    # circuit order: right factor first
    _demultiplex(circuit, v1h, v2h, qubits)
    # the CS block is a multiplexed Ry on the top (most significant) qubit
    ry_angles = [2.0 * t for t in theta]
    _multiplexed_rotation(circuit, "ry", qubits[0], qubits[1:], ry_angles)
    _demultiplex(circuit, u1, u2, qubits)


def _demultiplex(
    circuit: QuantumCircuit,
    block0: np.ndarray,
    block1: np.ndarray,
    qubits: List[int],
) -> None:
    """Implement ``block0 (+) block1`` (select on ``qubits[0]``).

    Uses ``a (+) b = (I x V) (D (+) D^dag) (I x W)`` with
    ``V diag(D^2) V^dag = a b^dag`` and ``W = D V^dag b``; the middle term
    is a multiplexed Rz on ``qubits[0]``.
    """
    product = block0 @ block1.conj().T
    # Schur decomposition of a unitary yields a unitary eigenbasis even for
    # degenerate eigenvalues (np.linalg.eig does not).
    eigvals_matrix, v = scipy.linalg.schur(product, output="complex")
    eigvals = np.diagonal(eigvals_matrix)
    if np.max(np.abs(eigvals_matrix - np.diag(eigvals))) > 1e-7:
        # product should be normal; fall back to eig + orthonormalization
        w_eig, v = np.linalg.eig(product)
        v, _ = np.linalg.qr(v)
        eigvals = np.diagonal(v.conj().T @ product @ v)
    phases = np.angle(eigvals) / 2.0
    d = np.exp(1j * phases)
    w = np.diag(d) @ v.conj().T @ block1

    _qsd(circuit, w, qubits[1:])
    rz_angles = [-2.0 * p for p in phases]
    _multiplexed_rotation(circuit, "rz", qubits[0], qubits[1:], rz_angles)
    _qsd(circuit, v, qubits[1:])


def _multiplexed_rotation(
    circuit: QuantumCircuit,
    axis: str,
    target: int,
    controls: Sequence[int],
    angles: Sequence[float],
) -> None:
    """Uniformly-controlled rotation: apply R(angles[j]) to ``target`` when
    the controls are in basis state ``j`` (controls[0] = MSB).

    Standard recursive construction: both Ry and Rz anticommute with X, so
    ``CNOT . R(b) . CNOT = R(-b)`` lets the control multiplex via angle
    half-sums and half-differences.
    """
    if len(angles) != 2 ** len(controls):
        raise SynthesisError("multiplexed rotation needs 2**controls angles")
    if not controls:
        angle = angles[0]
        if abs(angle) > _ATOL:
            circuit.add(axis, [target], [angle])
        return
    half = len(angles) // 2
    sums = [(angles[j] + angles[half + j]) / 2.0 for j in range(half)]
    diffs = [(angles[j] - angles[half + j]) / 2.0 for j in range(half)]
    _multiplexed_rotation(circuit, axis, target, controls[1:], sums)
    circuit.add("cx", [controls[0], target])
    _multiplexed_rotation(circuit, axis, target, controls[1:], diffs)
    circuit.add("cx", [controls[0], target])


def _append_u3(circuit: QuantumCircuit, matrix: np.ndarray, qubit: int) -> None:
    from repro.circuits.transpile import _is_identity_angles

    theta, phi, lam, _ = euler_decompose_u3(matrix)
    if not _is_identity_angles(theta, phi, lam, tol=_ATOL):
        circuit.add("u3", [qubit], [theta, phi, lam])

"""KAK (Cartan) decomposition of two-qubit unitaries.

Any U in U(4) factors as

    U = e^{i phi} (A1 x A2) . exp(i (a XX + b YY + c ZZ)) . (B1 x B2)

with single-qubit gates A*, B* and interaction coefficients (a, b, c) in
the Weyl chamber.  This gives an *analytic* 3-CNOT synthesis for generic
two-qubit unitaries (0/1/2 CNOTs in degenerate corners), complementing
the numerical QSearch engine, and exposes the interaction coefficients
used to reason about two-qubit gate "strength" (e.g. how close a block is
to a CNOT-equivalent).

Implementation follows the magic-basis recipe (Vatan & Williams 2004):
conjugate into the magic basis where SU(2)xSU(2) becomes SO(4), split the
symmetric part by a real-orthogonal eigenbasis, and read the interaction
angles off the eigenphases.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.exceptions import SynthesisError
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import gate_matrix
from repro.linalg.decompose import euler_decompose_u3
from repro.linalg.unitary import equal_up_to_global_phase

__all__ = [
    "KAKDecomposition",
    "kak_decompose",
    "kak_synthesize",
    "weyl_coordinates",
    "local_invariants",
]

_MAGIC = (1.0 / math.sqrt(2.0)) * np.array(
    [
        [1, 0, 0, 1j],
        [0, 1j, 1, 0],
        [0, 1j, -1, 0],
        [1, 0, 0, -1j],
    ],
    dtype=complex,
)
_MAGIC_DAG = _MAGIC.conj().T


@dataclass(frozen=True)
class KAKDecomposition:
    """The factors of a two-qubit KAK decomposition."""

    a1: np.ndarray
    a2: np.ndarray
    b1: np.ndarray
    b2: np.ndarray
    #: interaction coefficients (XX, YY, ZZ); defined up to the Weyl-group
    #: symmetry (coordinate permutations and sign pairs)
    coefficients: Tuple[float, float, float]
    global_phase: float

    def interaction_unitary(self) -> np.ndarray:
        """``exp(i (a XX + b YY + c ZZ))``."""
        a, b, c = self.coefficients
        xx = np.kron(gate_matrix("x"), gate_matrix("x"))
        yy = np.kron(gate_matrix("y"), gate_matrix("y"))
        zz = np.kron(gate_matrix("z"), gate_matrix("z"))
        ham = a * xx + b * yy + c * zz
        eigvals, eigvecs = np.linalg.eigh(ham)
        return (eigvecs * np.exp(1j * eigvals)) @ eigvecs.conj().T

    def reconstruct(self) -> np.ndarray:
        """Rebuild the original unitary from the factors."""
        outer = np.kron(self.a1, self.a2)
        inner = np.kron(self.b1, self.b2)
        return (
            cmath.exp(1j * self.global_phase)
            * outer
            @ self.interaction_unitary()
            @ inner
        )


def _orthogonal_eigenbasis(symmetric_unitary: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Real-orthogonal eigenbasis of a complex *symmetric* unitary.

    Writes P = X + iY with commuting real-symmetric X, Y and diagonalizes
    them simultaneously (random real combination breaks ties robustly).
    """
    x = symmetric_unitary.real
    y = symmetric_unitary.imag
    rng = np.random.default_rng(53)
    for _ in range(24):
        t = rng.uniform(0.1, 0.9)
        _, basis = np.linalg.eigh(t * x + (1.0 - t) * y)
        # verify simultaneous diagonalization
        dx = basis.T @ x @ basis
        dy = basis.T @ y @ basis
        if (
            np.max(np.abs(dx - np.diag(np.diagonal(dx)))) < 1e-9
            and np.max(np.abs(dy - np.diag(np.diagonal(dy)))) < 1e-9
        ):
            eigvals = np.diagonal(dx) + 1j * np.diagonal(dy)
            return basis, eigvals
    raise SynthesisError("failed to find a real orthogonal eigenbasis")


def _so4_to_su2_pair(orthogonal: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Split an SO(4) matrix (in the magic basis) into SU(2) x SU(2)."""
    candidate = _MAGIC @ orthogonal @ _MAGIC_DAG
    # candidate = A x B for 2x2 unitaries A, B: read them off by partial
    # "peeling" of the Kronecker structure via the largest block.
    blocks = candidate.reshape(2, 2, 2, 2).transpose(0, 2, 1, 3).reshape(4, 4)
    # the rearranged matrix is rank-1: vec(A) vec(B)^T; SVD splits it
    u, s, vh = np.linalg.svd(blocks)
    if s[0] < 1e-6 or s[1] > 1e-6:
        raise SynthesisError("magic-basis matrix is not a Kronecker product")
    a = math.sqrt(s[0]) * u[:, 0].reshape(2, 2)
    b = math.sqrt(s[0]) * vh[0, :].reshape(2, 2)
    # fix the phase so a is (close to) special unitary
    det_a = a[0, 0] * a[1, 1] - a[0, 1] * a[1, 0]
    phase = cmath.sqrt(det_a)
    if abs(phase) < 1e-12:
        raise SynthesisError("degenerate factor in Kronecker split")
    a = a / phase
    b = b * phase
    return a, b


def kak_decompose(unitary: np.ndarray) -> KAKDecomposition:
    """Compute the KAK decomposition of a 4x4 unitary."""
    unitary = np.asarray(unitary, dtype=complex)
    if unitary.shape != (4, 4):
        raise SynthesisError("kak_decompose expects a 4x4 unitary")
    det = np.linalg.det(unitary)
    if abs(abs(det) - 1.0) > 1e-8:
        raise SynthesisError("input is not unitary")
    su4 = unitary * det ** (-0.25)
    global_phase = cmath.phase(det) / 4.0

    magic_u = _MAGIC_DAG @ su4 @ _MAGIC
    gram = magic_u.T @ magic_u  # complex symmetric unitary
    basis, eigvals = _orthogonal_eigenbasis(gram)
    if np.linalg.det(basis) < 0:  # keep it in SO(4)
        basis[:, 0] = -basis[:, 0]

    angles = np.angle(eigvals) / 2.0
    # det(gram) = 1 forces sum(angles) = 0 mod pi; shift individual angles
    # by pi (which leaves f^2 = eigvals intact) until the sum is exactly 0,
    # so the left factor below is orthogonal and (a, b, c) is solvable.
    shifts = int(round(np.sum(angles) / math.pi))
    for k in range(abs(shifts)):
        angles[k] -= math.copysign(math.pi, shifts)
    if abs(np.sum(angles)) > 1e-8:
        raise SynthesisError("Cartan angles failed to normalize")
    f_diag = np.exp(1j * angles)

    left = magic_u @ basis @ np.diag(1.0 / f_diag)
    # left should be real orthogonal; clean numerical dust
    if np.max(np.abs(left.imag)) > 1e-6:
        raise SynthesisError("KAK left factor is not orthogonal")
    left = left.real
    if np.linalg.det(left) < 0:
        left[:, 0] = -left[:, 0]
        basis_signed = basis.copy()
        # compensate by flipping the same column on the right factor
        f_diag = f_diag.copy()
        # flipping left column 0 is equivalent to negating row 0 of what
        # multiplies it; easiest is to restart with flipped basis column:
        basis_signed[:, 0] = -basis_signed[:, 0]
        left = magic_u @ basis_signed @ np.diag(1.0 / f_diag)
        left = left.real
        basis = basis_signed

    # Interaction coefficients from the eigenphases: in the magic basis
    # the Cartan element diag(e^{i theta_k}) has
    #   theta = M (a, b, c) with M as below (XX/YY/ZZ are simultaneously
    # diagonal there with eigenvalue patterns (+,-,+,-) etc.); solve the
    # overdetermined system in least squares (it is exactly consistent).
    m = np.array(
        [
            [1, -1, 1],
            [1, 1, -1],
            [-1, -1, -1],
            [-1, 1, 1],
        ],
        dtype=float,
    )
    coeffs, *_ = np.linalg.lstsq(m, angles, rcond=None)
    a_coeff, b_coeff, c_coeff = (float(v) for v in coeffs)

    a1, a2 = _so4_to_su2_pair(left)
    b1, b2 = _so4_to_su2_pair(basis.T)

    decomposition = KAKDecomposition(
        a1=a1,
        a2=a2,
        b1=b1,
        b2=b2,
        coefficients=(a_coeff, b_coeff, c_coeff),
        global_phase=global_phase,
    )
    if not equal_up_to_global_phase(
        unitary, decomposition.reconstruct(), atol=1e-6
    ):
        raise SynthesisError("KAK reconstruction failed verification")
    return decomposition


def weyl_coordinates(unitary: np.ndarray) -> Tuple[float, float, float]:
    """The interaction coefficients (a, b, c) of a two-qubit unitary.

    These quantify entangling power, up to Weyl-group symmetry
    (permutations and pairwise sign flips): (0,0,0) is local,
    (±pi/4,0,0) is CNOT-equivalent, (±pi/4,±pi/4,±pi/4) is
    SWAP-equivalent.
    """
    return kak_decompose(unitary).coefficients


def local_invariants(unitary: np.ndarray) -> np.ndarray:
    """A complete invariant of two-qubit local equivalence.

    Returns the sorted eigenvalue multiset of the magic-basis Gram matrix
    ``(M^dag U M)^T (M^dag U M)`` (for U normalized into SU(4)), with the
    residual global sign fixed canonically.  Two unitaries are equal up to
    single-qubit gates iff these arrays match — unlike raw Weyl
    coordinates, which carry Weyl-group ambiguity.
    """
    unitary = np.asarray(unitary, dtype=complex)
    if unitary.shape != (4, 4):
        raise SynthesisError("local_invariants expects a 4x4 unitary")
    det = np.linalg.det(unitary)
    su4 = unitary * det ** (-0.25)
    magic_u = _MAGIC_DAG @ su4 @ _MAGIC
    eigvals = np.linalg.eigvals(magic_u.T @ magic_u)
    eigvals = eigvals / np.abs(eigvals)

    def canonical(values: np.ndarray) -> np.ndarray:
        return np.sort_complex(np.round(values, 9))

    plus = canonical(eigvals)
    minus = canonical(-eigvals)
    # the det^(1/4) branch flips all eigenvalues together; pick a canonical
    # representative by lexicographic comparison
    for a, b in zip(plus, minus):
        if a.real != b.real:
            return plus if a.real < b.real else minus
        if a.imag != b.imag:
            return plus if a.imag < b.imag else minus
    return plus


def kak_synthesize(unitary: np.ndarray) -> QuantumCircuit:
    """Two-qubit synthesis via KAK: at most 3 CNOTs, deterministic.

    The four local factors come straight from the decomposition; the
    interaction part ``exp(i(aXX + bYY + cZZ))`` is realized on the
    standard Vatan-Williams 3-CNOT skeleton, whose five single-qubit
    parameters are fitted by the (warm, convex-landscape) instantiation
    engine — instant in practice and verified by construction.
    """
    from repro.synthesis.instantiate import instantiate
    from repro.synthesis.vug import VUGTemplate

    decomposition = kak_decompose(unitary)
    target_interaction = decomposition.interaction_unitary()
    skeleton = VUGTemplate(
        2,
        (
            ("cx", (1, 0)),
            ("vug", (0,)),
            ("vug", (1,)),
            ("cx", (0, 1)),
            ("vug", (1,)),
            ("cx", (1, 0)),
            ("vug", (0,)),
            ("vug", (1,)),
        ),
    )
    fit = instantiate(skeleton, target_interaction, restarts=4, seed=23)
    if fit.distance > 1e-7:
        raise SynthesisError(
            f"interaction fit did not converge (distance {fit.distance:.2e})"
        )
    circuit = QuantumCircuit(2)
    _append_1q(circuit, decomposition.b1, 0)
    _append_1q(circuit, decomposition.b2, 1)
    for gate in skeleton.to_circuit(fit.params).gates:
        circuit.append(gate)
    _append_1q(circuit, decomposition.a1, 0)
    _append_1q(circuit, decomposition.a2, 1)
    return circuit


def _append_1q(circuit: QuantumCircuit, matrix: np.ndarray, qubit: int) -> None:
    theta, phi, lam, _ = euler_decompose_u3(matrix)
    circuit.add("u3", [qubit], [theta, phi, lam])

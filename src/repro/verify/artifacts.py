"""On-disk artifact integrity: schema versions and content checksums.

The pulse library is the long-lived artifact of the AccQOC/PAQOC/EPOC
workflow — hours of GRAPE work reused across programs and sessions — and
the checkpoint/resume path (PR 3) reloads it after crashes.  A flipped
bit or a hand-edited entry must not silently corrupt lookups, so saved
payloads carry a schema version and a per-entry checksum over the
canonical JSON of the pulse, and :meth:`PulseLibrary.load` quarantines
entries whose bytes no longer match.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List

__all__ = [
    "LIBRARY_SCHEMA_VERSION",
    "pulse_checksum",
    "validate_entry",
    "library_entry_keys",
]

#: current pulse-library payload schema.  Version 1 (implicit) had no
#: ``schema`` field and no per-entry checksums; version 2 adds both.
LIBRARY_SCHEMA_VERSION = 2


def pulse_checksum(pulse_payload: Dict[str, Any]) -> str:
    """A short content checksum over a pulse's canonical JSON form."""
    canonical = json.dumps(pulse_payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def validate_entry(entry: Any) -> List[str]:
    """Structural problems with one saved library entry (empty = valid).

    Checks the key (present, hex, even-length, carries at least the
    qubit-count byte) and — when the entry has a checksum — that the
    pulse payload still hashes to it.  Pulse-payload *content* checks
    (shapes, dtypes, finiteness) live in
    :func:`repro.pulse.serialize.validate_pulse_payload`, which the
    library runs next; this function guards the envelope.
    """
    problems: List[str] = []
    if not isinstance(entry, dict):
        return [f"entry is {type(entry).__name__}, not an object"]
    key = entry.get("key")
    if not isinstance(key, str) or not key:
        problems.append("missing or empty 'key'")
    elif len(key) % 2 != 0:
        problems.append(f"odd-length key hex ({len(key)} chars)")
    else:
        try:
            raw = bytes.fromhex(key)
        except ValueError:
            problems.append("key is not valid hex")
        else:
            if len(raw) < 2:
                problems.append("key too short to carry a qubit count")
    pulse = entry.get("pulse")
    if not isinstance(pulse, dict):
        problems.append("missing or non-object 'pulse' payload")
    else:
        stored = entry.get("checksum")
        if stored is not None and stored != pulse_checksum(pulse):
            problems.append(
                f"checksum mismatch (stored {stored}, "
                f"recomputed {pulse_checksum(pulse)})"
            )
    return problems


def library_entry_keys(path: str) -> frozenset:
    """The hex cache keys of every structurally valid entry in a saved
    pulse-library file, without decoding any pulse payloads.

    This is the cheap half of an integrity audit: the concurrent-merge
    tests (and the CI lock job) compare key sets across processes to
    prove no entry was lost to a load-save race, which needs the
    envelope checked but not the waveforms deserialized.

    Works on both library formats: canonical JSON files and the SQLite
    store (detected by file header), whose rows are held to the same
    envelope checks — valid key, parseable payload, matching checksum.
    """
    with open(path, "rb") as fh:
        header = fh.read(16)
    if header == b"SQLite format 3\x00":
        return _sqlite_entry_keys(path)
    with open(path) as fh:
        payload = json.load(fh)
    entries = payload.get("entries", []) if isinstance(payload, dict) else []
    if not isinstance(entries, list):
        return frozenset()
    return frozenset(
        entry["key"] for entry in entries if not validate_entry(entry)
    )


def _sqlite_entry_keys(path: str) -> frozenset:
    import sqlite3

    conn = sqlite3.connect(path)
    try:
        try:
            rows = conn.execute(
                "SELECT key, payload, checksum FROM pulses"
            ).fetchall()
        except sqlite3.OperationalError:
            return frozenset()
    finally:
        conn.close()
    valid = []
    for key, payload_text, checksum in rows:
        try:
            pulse = json.loads(payload_text)
        except (TypeError, ValueError):
            continue
        entry = {"key": bytes(key).hex(), "pulse": pulse, "checksum": checksum}
        if not validate_entry(entry):
            valid.append(entry["key"])
    return frozenset(valid)

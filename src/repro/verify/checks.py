"""Equivalence-checking primitives for verified compilation.

Every EPOC stage is supposed to preserve the circuit's unitary up to
global phase.  These helpers *measure* that instead of trusting it:

* :func:`unitary_infidelity` — process infidelity between two explicit
  matrices (global-phase invariant).
* :func:`circuit_equivalence` — compare two circuits: tensor-based
  (full unitaries) for small widths, sampled-statevector overlap above
  a width cutoff, and an explicit "skipped" outcome beyond the widest
  simulable register.
* :func:`items_as_circuit` — rebuild a circuit from regrouped unitary
  work items so the regroup stage can be checked like any other.
* :func:`pulse_infidelity` — re-derive a pulse's propagator from its
  stored control samples (reusing :func:`repro.qoc.grape.propagate`)
  and measure it against the target unitary.  Because the propagator is
  recomputed from the raw waveform, this also catches corrupted or
  stale pulse-library artifacts, not just GRAPE shortfalls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.linalg.unitary import process_fidelity

__all__ = [
    "CheckOutcome",
    "unitary_infidelity",
    "circuit_equivalence",
    "items_as_circuit",
    "pulse_infidelity",
]


@dataclass(frozen=True)
class CheckOutcome:
    """Result of one equivalence measurement."""

    #: measured process infidelity (0.0 = equivalent up to global phase);
    #: ``nan`` when the check was skipped.
    infidelity: float
    #: "tensor", "state" or "skipped".
    method: str

    @property
    def skipped(self) -> bool:
        return self.method == "skipped"


def unitary_infidelity(target: np.ndarray, achieved: np.ndarray) -> float:
    """Process infidelity ``1 - |tr(U†V)|²/d²`` (global-phase invariant)."""
    return max(0.0, 1.0 - process_fidelity(target, achieved))


def circuit_equivalence(
    reference: QuantumCircuit,
    candidate: QuantumCircuit,
    tensor_width_cutoff: int = 10,
    state_width_cutoff: int = 20,
    sample_states: int = 6,
    seed: int = 97,
) -> CheckOutcome:
    """Measure how far ``candidate`` drifts from ``reference``.

    Up to ``tensor_width_cutoff`` qubits the full unitaries are compared
    (exact).  Up to ``state_width_cutoff`` both circuits are applied to
    ``sample_states`` Haar-random statevectors and the mean squared
    overlap deficit is reported — a sound sampled relaxation: any state
    with overlap magnitude < 1 witnesses inequivalence, while agreement
    on random states makes inequivalence overwhelmingly unlikely.
    Beyond that the check is skipped (2**n memory) and says so.
    """
    n = reference.num_qubits
    if n != candidate.num_qubits:
        return CheckOutcome(infidelity=1.0, method="tensor")
    if n <= tensor_width_cutoff:
        u_ref = reference.unitary(max_qubits=tensor_width_cutoff)
        u_cand = candidate.unitary(max_qubits=tensor_width_cutoff)
        return CheckOutcome(
            infidelity=unitary_infidelity(u_ref, u_cand), method="tensor"
        )
    if n > state_width_cutoff:
        return CheckOutcome(infidelity=float("nan"), method="skipped")
    rng = np.random.default_rng(seed)
    dim = 2**n
    worst = 0.0
    for _ in range(sample_states):
        state = rng.standard_normal(dim) + 1j * rng.standard_normal(dim)
        state /= np.linalg.norm(state)
        out_ref = reference.statevector(initial=state)
        out_cand = candidate.statevector(initial=state)
        overlap = abs(np.vdot(out_ref, out_cand)) ** 2
        worst = max(worst, 1.0 - min(1.0, overlap))
    return CheckOutcome(infidelity=worst, method="state")


def items_as_circuit(items: Sequence, num_qubits: int) -> QuantumCircuit:
    """Rebuild a circuit from regrouped work items (``.matrix``/``.qubits``).

    Applying the returned circuit reproduces the product of the item
    unitaries in list order, which is exactly what the pulse schedule
    will implement — so checking it against the regroup stage's input
    verifies the unitary bookkeeping before any GRAPE time is spent.
    """
    out = QuantumCircuit(num_qubits)
    for item in items:
        out.unitary_gate(item.matrix, item.qubits)
    return out


def pulse_infidelity(target: np.ndarray, pulse, hardware) -> float:
    """Process infidelity of a pulse's *recomputed* propagator vs ``target``.

    The propagator is rebuilt from the stored control samples on the
    given hardware model (the same chain the library optimizes on), so
    the number reflects what the waveform actually implements — a
    corrupted artifact or a degraded GRAPE solution both surface here.
    """
    from repro.qoc.grape import pulse_propagator

    achieved = pulse_propagator(pulse, hardware)
    return unitary_infidelity(np.asarray(target, dtype=complex), achieved)

"""Verified compilation: stage-boundary checks and artifact integrity.

EPOC's value proposition rests on every stage — ZX rewrite,
partitioning, VUG synthesis, regrouping, GRAPE — preserving the
circuit's unitary up to global phase.  This package checks that instead
of trusting it (see README "Verified compilation"):

* :class:`StageVerifier` — threaded through
  :class:`~repro.core.EPOCPipeline` and all three baselines; runs the
  four stage-boundary checks and accumulates per-stage infidelity into
  an :class:`~repro.resilience.ledger.ErrorBudgetLedger` with an
  end-to-end budget.
* :mod:`repro.verify.checks` — the equivalence primitives (tensor-based
  with a sampled-state fallback, propagator recomputation for pulses).
* :mod:`repro.verify.artifacts` — schema versions and per-entry content
  checksums for the on-disk pulse library, backing
  :meth:`~repro.qoc.library.PulseLibrary.load`'s quarantine behaviour.
"""

from __future__ import annotations

from repro.verify.artifacts import (
    LIBRARY_SCHEMA_VERSION,
    pulse_checksum,
    validate_entry,
)
from repro.verify.checks import (
    CheckOutcome,
    circuit_equivalence,
    items_as_circuit,
    pulse_infidelity,
    unitary_infidelity,
)
from repro.verify.verifier import StageVerifier, VerificationSummary

__all__ = [
    "LIBRARY_SCHEMA_VERSION",
    "pulse_checksum",
    "validate_entry",
    "CheckOutcome",
    "circuit_equivalence",
    "items_as_circuit",
    "pulse_infidelity",
    "unitary_infidelity",
    "StageVerifier",
    "VerificationSummary",
]

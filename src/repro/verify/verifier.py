"""The stage-boundary verifier threaded through every compilation flow.

A :class:`StageVerifier` sits between pipeline stages and measures, per
the configured :class:`~repro.config.VerifyConfig`:

(a) ZX extraction vs. the input circuit,
(b) partition/regroup reassembly vs. the stage input,
(c) each synthesized block vs. its target unitary, and
(d) each generated pulse's recomputed propagator vs. its unitary,

accumulating every outcome into an
:class:`~repro.resilience.ledger.ErrorBudgetLedger`.  ``warn`` mode logs
failures and counts them on ``verify.*`` metrics; ``strict`` raises
:class:`~repro.exceptions.VerificationError` naming the stage and block
the moment a check fails (and again at :meth:`finalize` if the summed
infidelity exceeds the end-to-end budget).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.config import VerifyConfig
from repro.exceptions import VerificationError
from repro.resilience.ledger import ErrorBudgetLedger, VerificationRecord
from repro.verify.checks import (
    CheckOutcome,
    circuit_equivalence,
    pulse_infidelity,
    unitary_infidelity,
)

__all__ = ["StageVerifier", "VerificationSummary"]

logger = telemetry.get_logger("verify")


@dataclass(frozen=True)
class VerificationSummary:
    """What a flow's verification pass concluded, for the report."""

    mode: str
    checks: int
    failed: int
    skipped: int
    total_infidelity: float
    error_budget: float
    budget_exceeded: bool
    stage_infidelity: Dict[str, float] = field(default_factory=dict)
    #: the failing records, so reports can name blocks and deficits.
    failures: List[VerificationRecord] = field(default_factory=list)

    @property
    def status(self) -> str:
        """"yes" when every check ran and passed within budget, else
        "partial" (some check failed, was skipped, or the budget blew)."""
        clean = self.failed == 0 and self.skipped == 0
        return "yes" if clean and not self.budget_exceeded else "partial"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "status": self.status,
            "checks": self.checks,
            "failed": self.failed,
            "skipped": self.skipped,
            "total_infidelity": self.total_infidelity,
            "error_budget": self.error_budget,
            "budget_exceeded": self.budget_exceeded,
            "stage_infidelity": dict(self.stage_infidelity),
            "failures": [record.to_dict() for record in self.failures],
        }


class StageVerifier:
    """Runs the stage-boundary checks for one compilation."""

    def __init__(
        self,
        config: Optional[VerifyConfig] = None,
        target_fidelity: float = 0.999,
        synthesis_threshold: float = 1e-6,
    ):
        self.config = config or VerifyConfig()
        self.mode = self.config.resolved_mode()
        self.target_fidelity = target_fidelity
        self.synthesis_threshold = synthesis_threshold
        self.ledger = ErrorBudgetLedger(target_fidelity=target_fidelity)
        #: per-library-key verdicts so N occurrences of one unitary cost
        #: one propagator recomputation (mirrors the cache/singleflight)
        self._pulse_verdicts: Dict[bytes, Tuple[float, str]] = {}

    @property
    def enabled(self) -> bool:
        return self.mode != "off"

    # -- recording -------------------------------------------------------

    def _record(
        self,
        stage: str,
        outcome: CheckOutcome,
        tolerance: float,
        index: Optional[int] = None,
        qubits: Tuple[int, ...] = (),
        detail: str = "",
    ) -> VerificationRecord:
        passed = outcome.skipped or (outcome.infidelity <= tolerance)
        record = VerificationRecord(
            stage=stage,
            index=index,
            qubits=tuple(qubits),
            infidelity=outcome.infidelity,
            tolerance=tolerance,
            passed=passed,
            method=outcome.method,
            detail=detail,
        )
        self.ledger.record_check(record)
        if not passed and self.mode == "strict":
            where = f"stage '{stage}'"
            if index is not None:
                where += f", block {index}"
                if qubits:
                    where += f" on qubits {tuple(qubits)}"
            raise VerificationError(
                f"verification failed at {where}: infidelity "
                f"{outcome.infidelity:.3e} exceeds tolerance {tolerance:.3e}"
                + (f" ({detail})" if detail else "")
            )
        return record

    # -- stage checks ----------------------------------------------------

    def check_circuit_stage(
        self, stage: str, reference, candidate, detail: str = ""
    ) -> Optional[VerificationRecord]:
        """Check (a)/(b): a stage's output circuit vs. its input circuit,
        equivalent up to global phase."""
        if not self.enabled:
            return None
        outcome = circuit_equivalence(
            reference,
            candidate,
            tensor_width_cutoff=self.config.tensor_width_cutoff,
            state_width_cutoff=self.config.state_width_cutoff,
            sample_states=self.config.sample_states,
            seed=self.config.seed,
        )
        return self._record(
            stage, outcome, tolerance=self.config.unitary_atol, detail=detail
        )

    def check_synthesis(
        self,
        index: int,
        qubits: Tuple[int, ...],
        target: np.ndarray,
        achieved: np.ndarray,
    ) -> Optional[VerificationRecord]:
        """Check (c): a synthesized block's unitary vs. its target, held
        to the synthesis tolerance (with the configured slack)."""
        if not self.enabled:
            return None
        outcome = CheckOutcome(
            infidelity=unitary_infidelity(target, achieved), method="tensor"
        )
        # the search accepts at hs_distance <= threshold; process
        # infidelity of such a result is bounded by ~2*threshold, so the
        # slack default of 2 keeps legitimate accepts inside tolerance
        tolerance = max(
            self.synthesis_threshold * self.config.synthesis_slack,
            self.config.unitary_atol,
        )
        return self._record(
            "synthesis", outcome, tolerance, index=index, qubits=qubits
        )

    def check_pulse(
        self,
        index: int,
        qubits: Tuple[int, ...],
        target: np.ndarray,
        pulse,
        hardware,
        key: Optional[bytes] = None,
    ) -> Optional[VerificationRecord]:
        """Check (d): the pulse's recomputed propagator vs. its unitary.

        ``key`` (the pulse-library cache key) memoizes the propagator
        recomputation, so duplicated work items cost one check — the
        same economy the library's singleflight gives pulse generation.
        """
        if not self.enabled:
            return None
        if key is not None and key in self._pulse_verdicts:
            infidelity, method = self._pulse_verdicts[key]
        else:
            infidelity = pulse_infidelity(target, pulse, hardware)
            method = "tensor"
            if key is not None:
                self._pulse_verdicts[key] = (infidelity, method)
        tolerance = max(
            1.0 - self.target_fidelity, self.config.unitary_atol
        )
        detail = ""
        if getattr(pulse, "source", "") == "grape-degraded":
            detail = "degraded pulse (GRAPE non-convergence)"
        return self._record(
            "pulse",
            CheckOutcome(infidelity=infidelity, method=method),
            tolerance,
            index=index,
            qubits=qubits,
            detail=detail,
        )

    # -- wrap-up ---------------------------------------------------------

    def finalize(self) -> Optional[VerificationSummary]:
        """Compare the accumulated infidelity against the end-to-end
        budget and return the summary for the report."""
        if not self.enabled:
            return None
        total = self.ledger.total_infidelity
        # an explicit budget is a hard cap; otherwise derive it from the
        # run's own per-check tolerances, the worst total an
        # all-checks-pass compilation could honestly accumulate
        budget = self.config.error_budget
        if budget is None:
            budget = self.ledger.allowance
        self.ledger.error_budget = budget
        exceeded = self.ledger.budget_exceeded
        if exceeded:
            telemetry.get_metrics().inc("verify.budget_exceeded")
            logger.warning(
                "end-to-end error budget exceeded: accumulated infidelity "
                "%.3e > budget %.3e",
                total,
                budget,
            )
            if self.mode == "strict":
                raise VerificationError(
                    f"verification failed at stage 'budget': accumulated "
                    f"infidelity {total:.3e} exceeds the end-to-end error "
                    f"budget {budget:.3e}"
                )
        summary = VerificationSummary(
            mode=self.mode,
            checks=self.ledger.checks,
            failed=len(self.ledger.failures),
            skipped=self.ledger.skipped,
            total_infidelity=total,
            error_budget=budget,
            budget_exceeded=exceeded,
            stage_infidelity=self.ledger.stage_infidelity(),
            failures=list(self.ledger.failures),
        )
        logger.info(
            "verification (%s): %d checks, %d failed, %d skipped, "
            "total infidelity %.3e of budget %.3e",
            summary.mode,
            summary.checks,
            summary.failed,
            summary.skipped,
            summary.total_infidelity,
            summary.error_budget,
        )
        return summary
